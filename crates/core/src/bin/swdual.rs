//! `swdual` — command-line interface to the hybrid search engine.
//!
//! Mirrors the paper's tool shape (Table I shows each baseline's CLI):
//!
//! ```text
//! swdual search   --db DB.(fasta|sqb) --queries Q.fasta
//!                 [--cpus N] [--gpus N] [--device-class SPEC]
//!                 [--prior-scale W:F[,W:F...]]
//!                 [--reopt] [--reopt-threshold F] [--reopt-min-remaining N]
//!                 [--policy dual|dual-dp|self]
//!                 [--top K] [--gap-open N] [--gap-extend N] [--evalues]
//!                 [--trace-out TRACE.json] [--metrics-out METRICS.prom]
//!                 [--journal-out EVENTS.jsonl] [--progress] [--profile]
//!                 [--watchdog] [--live-socket PATH]
//!                 [--fault-plan SPEC | --fault-seed N]
//!                 [--job-timeout-slack F] [--min-job-timeout-ms MS]
//! swdual analyze  EVENTS.jsonl [--json|--text] [-o FILE]
//! swdual explain  EVENTS.jsonl [--what-if SPEC] [--json|--text] [-o FILE]
//! swdual profile  EVENTS.jsonl [--flame OUT.folded] [--speedscope OUT.json]
//!                 [--roofline] [--json] [-o FILE]
//! swdual top      SOCKET|EVENTS.jsonl [--refresh-ms MS]
//! swdual tail     EVENTS.jsonl [--follow] [--alerts-only]
//! swdual diff     BASE.jsonl HEAD.jsonl [--profile] [--json|--text]
//!                 [--threshold PCT] [--fail-on-regression] [--exact-only]
//!                 [-o FILE]
//! swdual diff     --bench [LEDGER.json] [--bench-name NAME] ...
//! swdual convert  --input DB.fasta --output DB.sqb
//! swdual generate --sequences N --mean-len L --output DB.fasta [--seed S]
//! swdual info     --db DB.(fasta|sqb)
//! ```

use std::collections::HashMap;
use std::process::ExitCode;
use swdual_bio::karlin;
use swdual_bio::stats::LengthStats;
use swdual_bio::{fasta, sqb, Alphabet, Matrix, ScoringScheme, SequenceSet};
use swdual_core::{ProgressReporter, SearchBuilder};
use swdual_datagen::{synthetic_database, LengthModel};
use swdual_gpusim::DeviceClass;
use swdual_runtime::{AllocationPolicy, FaultPlan, ReoptConfig, WorkerSpec};
use swdual_sched::dual::KnapsackMethod;
use swdual_sched::knapsack::DpConfig;

/// Print to stdout, exiting quietly when the reader has gone away
/// (`swdual info db | head` must not panic on the broken pipe).
macro_rules! outln {
    ($($arg:tt)*) => {{
        use std::io::Write;
        if writeln!(std::io::stdout(), $($arg)*).is_err() {
            std::process::exit(0);
        }
    }};
}

fn usage() -> &'static str {
    "swdual — hybrid CPU+GPU Smith-Waterman database search (SWDUAL reproduction)

USAGE:
  swdual search   --db FILE --queries FILE [--cpus N] [--gpus N]
                  [--device-class SPEC] [--prior-scale W:F[,W:F...]]
                  [--reopt] [--reopt-threshold F] [--reopt-min-remaining N]
                  [--policy dual|dual-dp|self] [--top K]
                  [--gap-open N] [--gap-extend N] [--evalues]
                  [--trace-out TRACE.json] [--metrics-out METRICS.prom]
                  [--journal-out EVENTS.jsonl] [--progress] [--profile]
                  [--watchdog] [--live-socket PATH]
                  [--fault-plan SPEC | --fault-seed N]
                  [--job-timeout-slack F] [--min-job-timeout-ms MS]
  swdual analyze  EVENTS.jsonl [--json|--text] [-o FILE]
  swdual explain  EVENTS.jsonl [--what-if SPEC] [--json|--text] [-o FILE]
  swdual profile  EVENTS.jsonl [--flame OUT.folded] [--speedscope OUT.json]
                  [--roofline] [--json] [-o FILE]
  swdual top      SOCKET|EVENTS.jsonl [--refresh-ms MS]
  swdual tail     EVENTS.jsonl [--follow] [--alerts-only]
  swdual diff     BASE.jsonl HEAD.jsonl [--profile] [--json|--text]
                  [--threshold PCT] [--fail-on-regression] [--exact-only]
                  [-o FILE]
  swdual diff     --bench [LEDGER.json] [--bench-name NAME] ...
  swdual convert  --input FILE.fasta --output FILE.sqb
  swdual generate --sequences N --mean-len L --output FILE [--seed S]
  swdual info     --db FILE

Database/query files may be FASTA (.fasta/.fa) or SQB (.sqb). The
journal readers (`analyze`, `explain`, `tail`) accept `-` to read the
journal from stdin.

Watching a run live:
  --watchdog           run the incremental anomaly watchdog during the
                       search: straggler / bound-at-risk / worker-dead
                       / queue-stall / re-opt alerts are journaled as
                       alert_* fault instants, counted in
                       swdual_alerts_total{kind=...}, and echoed to
                       stderr as they fire
  --live-socket PATH   stream the growing journal over a Unix domain
                       socket; `swdual top PATH` renders it as a live
                       dashboard, `nc -U PATH` taps the raw JSONL
  swdual top SRC       live per-worker dashboard (utilization bars,
                       queue depths, observed/estimate ratio, ETA,
                       active alerts) from a live socket or a recorded
                       journal file
  swdual tail SRC      follow a journal file (or stdin) line by line;
                       --alerts-only prints just the watchdog alerts

A search with observability enabled also arms the flight recorder: on
a panic, the last events are dumped to CRASH-<pid>.jsonl (next to
--journal-out, else the working directory; $SWDUAL_CRASH_DIR
overrides) — `swdual explain CRASH-<pid>.jsonl` folds the fragment.

`swdual analyze` audits a `--journal-out` journal: achieved makespan
vs the dual-approximation λ and its 2λ guarantee, per-worker
utilization, load imbalance, latency quantiles and plan skew.

`swdual explain` reconstructs a run's causal lineage from a v2
journal: the true critical path (planned → dispatched → executed, on
both clocks) and a blame decomposition that attributes 100% of the
modelled makespan to compute / transfer / queue-wait / straggle /
re-plan / recovery / imbalance, per run, per worker and per
query-length bucket. `--what-if SPEC` replays the recorded schedule on
the modelled clock under a counterfactual premise and reports the
predicted makespan against the 2λ guarantee:
  drop-worker:N        remove worker N from the platform
  perfect-calibration  plan with the speeds the run actually observed
  zero-transfer        GPU workers pay no host↔device transfer
  plus-gpu:CLASS       add one GPU of a device class (c2050|phi|knl|bioseal)
  no-faults            faulted workers run at their species' best speed

`swdual profile` folds a journal (ideally recorded with `search
--profile` for phase-level detail) into a profile: `--flame` writes
collapsed stacks for flamegraph.pl / inferno, `--speedscope` writes a
speedscope.app document with one profile per clock, and `--roofline`
(the default) prints the per-device roofline report — achieved vs
attainable GCUPS and a transfer- vs compute-bound verdict per
query-length bucket.

`swdual diff` compares two journals (base, then head): makespans on
both clocks, the λ/2λ bound margin, per-worker utilization, latency
quantiles, throughput and fault counts — each delta classified
IMPROVED / REGRESSED / neutral. Modelled-clock metrics are judged
exactly; wall-clock metrics get `--threshold PCT` slack (default 5%);
histogram quantiles additionally honor the one-bucket relative error.
`--profile` folds in per-phase self-times, per-device busy time and
roofline-verdict flips. `--fail-on-regression` exits non-zero when
anything regressed (`--exact-only` restricts the gate to the
deterministic modelled-clock lane, the CI setting). `--bench` diffs
the last two entries per bench in the `BENCH_trend.json` ledger
instead of journals.

Device zoo (simulated accelerator classes; scores never change):
  --device-class SPEC  GPU worker device class(es): a name (c2050 | phi
                       | knl | bioseal), a comma list (one GPU per
                       entry), or \"mixed\" (one of each class). A single
                       name is replicated across --gpus workers.
  --prior-scale W:F    skew worker W's *declared* rate model by factor
                       F (comma-separable) — deliberate miscalibration
                       for re-optimization experiments.

Online re-optimization (off by default; hits never change):
  --reopt                   enable re-planning of undispatched tasks
                            when observed per-worker slowdown skew
                            exceeds the threshold
  --reopt-threshold F       skew ratio that triggers a re-plan
                            (default 1.5; implies --reopt)
  --reopt-min-remaining N   minimum undispatched tasks worth
                            re-planning (default 2; implies --reopt)

Fault injection (deterministic; hits are identical to a fault-free run
as long as one worker survives):
  --fault-plan SPEC    explicit plan, e.g. \"1:crash@2,2:device@0\"
                       (noreg | crash@N | vanish@N | device@K | straggle@MSxF)
  --fault-seed N       derive a pseudo-random plan from seed N
                       (always spares at least one worker)"
}

/// Parse `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {:?}", args[i]))?;
        // Boolean flags.
        if matches!(
            key,
            "evalues" | "progress" | "json" | "text" | "profile" | "reopt" | "watchdog"
        ) {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

/// Read a journal argument: `-` means stdin, anything else is a file.
fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        use std::io::Read;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("stdin: {e}"))?;
        Ok(buf)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn load_set(path: &str) -> Result<SequenceSet, String> {
    if path.ends_with(".sqb") {
        let mut file = sqb::SqbFile::open(path).map_err(|e| format!("{path}: {e}"))?;
        file.read_all().map_err(|e| format!("{path}: {e}"))
    } else {
        fasta::read_file(path, Alphabet::Protein, fasta::ResiduePolicy::Lossy)
            .map_err(|e| format!("{path}: {e}"))
    }
}

fn cmd_search(flags: HashMap<String, String>) -> Result<(), String> {
    let db_path = flags.get("db").ok_or("--db is required")?;
    let q_path = flags.get("queries").ok_or("--queries is required")?;
    let cpus: usize = flags
        .get("cpus")
        .map_or(Ok(1), |v| v.parse().map_err(|_| "--cpus"))?;
    let gpus: usize = flags
        .get("gpus")
        .map_or(Ok(1), |v| v.parse().map_err(|_| "--gpus"))?;
    let top: usize = flags
        .get("top")
        .map_or(Ok(10), |v| v.parse().map_err(|_| "--top"))?;
    let gap_open: i32 = flags
        .get("gap-open")
        .map_or(Ok(10), |v| v.parse().map_err(|_| "--gap-open"))?;
    let gap_extend: i32 = flags
        .get("gap-extend")
        .map_or(Ok(2), |v| v.parse().map_err(|_| "--gap-extend"))?;
    let policy = match flags.get("policy").map(String::as_str).unwrap_or("dual") {
        "dual" => AllocationPolicy::DualApprox(KnapsackMethod::Greedy),
        "dual-dp" => AllocationPolicy::DualApprox(KnapsackMethod::Dp(DpConfig::default())),
        "self" => AllocationPolicy::SelfScheduling,
        other => return Err(format!("unknown policy {other:?} (dual|dual-dp|self)")),
    };
    // Device zoo: which class each simulated GPU worker belongs to.
    let gpu_classes: Vec<DeviceClass> = match flags.get("device-class").map(String::as_str) {
        None => vec![DeviceClass::C2050; gpus],
        Some("mixed") => DeviceClass::ALL.to_vec(),
        Some(spec) => {
            let list: Vec<DeviceClass> = spec
                .split(',')
                .map(|s| s.trim().parse())
                .collect::<Result<_, _>>()?;
            if list.len() == 1 {
                vec![list[0]; gpus.max(1)]
            } else {
                if flags.contains_key("gpus") && gpus != list.len() {
                    return Err(format!(
                        "--gpus {} conflicts with the {}-entry --device-class list",
                        gpus,
                        list.len()
                    ));
                }
                list
            }
        }
    };
    let gpus = gpu_classes.len();
    if cpus + gpus == 0 {
        return Err("need at least one worker (--cpus/--gpus)".into());
    }

    let database = load_set(db_path)?;
    let queries = load_set(q_path)?;
    let db_residues = database.total_residues();
    let zoo_label = if gpus == 0 {
        "none".to_string()
    } else {
        gpu_classes
            .iter()
            .map(|c| c.name())
            .collect::<Vec<_>>()
            .join("+")
    };
    eprintln!(
        "database: {} sequences / {} residues; queries: {}; workers: {cpus} CPU + {gpus} GPU(sim: {zoo_label})",
        database.len(),
        db_residues,
        queries.len()
    );

    let mut workers = Vec::new();
    for &class in &gpu_classes {
        workers.push(WorkerSpec::device_class(class));
    }
    for _ in 0..cpus {
        workers.push(WorkerSpec::cpu_default());
    }
    if let Some(spec) = flags.get("prior-scale") {
        for part in spec.split(',') {
            let (w, f) = part
                .split_once(':')
                .ok_or_else(|| format!("--prior-scale entry {part:?} is not W:F"))?;
            let w: usize = w
                .trim()
                .parse()
                .map_err(|_| format!("--prior-scale worker {w:?}"))?;
            let f: f64 = f
                .trim()
                .parse()
                .map_err(|_| format!("--prior-scale factor {f:?}"))?;
            let spec = workers
                .get_mut(w)
                .ok_or_else(|| format!("--prior-scale worker {w} out of range"))?;
            *spec = spec.clone().with_prior_scale(f);
            eprintln!("prior: worker {w} declared rate model skewed x{f}");
        }
    }
    let scheme = ScoringScheme::new(Matrix::blosum62().clone(), gap_open, gap_extend);
    let query_lens: Vec<usize> = queries.iter().map(|s| s.len()).collect();
    let trace_out = flags.get("trace-out");
    let metrics_out = flags.get("metrics-out");
    let journal_out = flags.get("journal-out");
    let progress = flags.contains_key("progress");
    let profile = flags.contains_key("profile");
    let watchdog = flags.contains_key("watchdog");
    let live_socket = flags.get("live-socket");
    let observe = trace_out.is_some()
        || metrics_out.is_some()
        || journal_out.is_some()
        || progress
        || profile
        || watchdog
        || live_socket.is_some();
    let obs = if observe {
        swdual_obs::Obs::enabled()
    } else {
        swdual_obs::Obs::disabled()
    };
    // Phase/kernel-level detail spans; the journal then feeds
    // `swdual profile`.
    obs.set_profiling(profile);
    // Crash-surviving flight recorder: the last events are dumped to
    // CRASH-<pid>.jsonl if the process panics mid-search.
    if observe {
        let flight = swdual_obs::FlightRecorder::new(swdual_obs::flight::DEFAULT_FLIGHT_CAPACITY);
        obs.attach_flight(&flight);
        let crash_dir = journal_out
            .and_then(|p| std::path::Path::new(p).parent())
            .filter(|p| !p.as_os_str().is_empty())
            .map_or_else(
                || std::path::PathBuf::from("."),
                std::path::Path::to_path_buf,
            );
        flight.install_panic_hook(&crash_dir);
    }
    let mut builder = SearchBuilder::new()
        .database(database)
        .queries(queries)
        .workers(workers)
        .scheme(scheme)
        .policy(policy)
        .top_k(top)
        .observability(obs.clone());
    match (flags.get("fault-plan"), flags.get("fault-seed")) {
        (Some(_), Some(_)) => {
            return Err("--fault-plan and --fault-seed are mutually exclusive".into())
        }
        (Some(spec), None) => {
            let plan = FaultPlan::parse(spec)?;
            eprintln!("faults: injecting plan `{plan}`");
            builder = builder.fault_plan(plan);
        }
        (None, Some(seed)) => {
            let seed: u64 = seed.parse().map_err(|_| "--fault-seed")?;
            let plan = FaultPlan::seeded(seed, cpus + gpus);
            eprintln!("faults: seed {seed} -> plan `{plan}`");
            builder = builder.fault_seed(seed);
        }
        (None, None) => {}
    }
    if let Some(slack) = flags.get("job-timeout-slack") {
        let slack: f64 = slack.parse().map_err(|_| "--job-timeout-slack")?;
        builder = builder.job_timeout_slack(slack);
    }
    if let Some(ms) = flags.get("min-job-timeout-ms") {
        let ms: u64 = ms.parse().map_err(|_| "--min-job-timeout-ms")?;
        builder = builder.min_job_timeout(std::time::Duration::from_millis(ms));
    }
    if flags.contains_key("reopt")
        || flags.contains_key("reopt-threshold")
        || flags.contains_key("reopt-min-remaining")
    {
        let mut reopt = ReoptConfig::enabled();
        if let Some(v) = flags.get("reopt-threshold") {
            reopt.threshold = v
                .parse::<f64>()
                .ok()
                .filter(|t| *t >= 1.0)
                .ok_or("--reopt-threshold must be a number >= 1")?;
        }
        if let Some(v) = flags.get("reopt-min-remaining") {
            reopt.min_remaining = v.parse().map_err(|_| "--reopt-min-remaining")?;
        }
        eprintln!(
            "reopt: on (threshold x{}, min remaining {})",
            reopt.threshold, reopt.min_remaining
        );
        builder = builder.reopt(reopt);
    }
    if watchdog {
        let cfg = swdual_obs::watch::WatchConfig::default();
        eprintln!(
            "watchdog: on (straggler x{}, bound risk at {}x2\u{3bb})",
            cfg.straggler_ratio, cfg.bound_risk_fraction
        );
        builder = builder.watchdog(cfg);
    }
    if let Some(path) = live_socket {
        eprintln!("live: streaming journal on {path}");
        builder = builder.live(path.clone());
    }
    let reporter =
        progress.then(|| ProgressReporter::start(&obs, std::time::Duration::from_millis(250)));
    let result = builder.try_run();
    if let Some(reporter) = reporter {
        reporter.finish();
    }
    let report = match result {
        Ok(report) => report,
        Err(e) => return Err(format!("search failed: {e}")),
    };

    if let Some(path) = trace_out {
        std::fs::write(path, report.timeline()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("trace: wrote Chrome-trace JSON to {path}");
    }
    if let Some(path) = metrics_out {
        std::fs::write(path, report.metrics()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics: wrote Prometheus text to {path}");
    }
    if let Some(path) = journal_out {
        std::fs::write(path, report.journal()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("journal: wrote JSON-lines events to {path}");
    }

    let evalues = flags.contains_key("evalues");
    let stats = karlin::gapped_params(gap_open, gap_extend);
    if evalues && stats.is_none() {
        eprintln!(
            "note: no fitted gapped statistics for open {gap_open} / extend {gap_extend}; \
             E-values omitted"
        );
    }
    for qh in report.hits() {
        outln!("Query {}:", report.query_id(qh.query_index));
        for hit in &qh.hits {
            match (evalues, stats) {
                (true, Some(p)) => {
                    outln!(
                        "  {:<24} score {:>6}  bits {:>7.1}  E {:.2e}",
                        report.database_id(hit.db_index),
                        hit.score,
                        p.bit_score(hit.score),
                        p.evalue(hit.score, query_lens[qh.query_index], db_residues)
                    );
                }
                _ => outln!(
                    "  {:<24} score {:>6}",
                    report.database_id(hit.db_index),
                    hit.score
                ),
            }
        }
    }
    eprintln!();
    eprint!("{}", report.render_workers());
    eprintln!(
        "wall: {:.2} s ({:.3} GCUPS on this host)",
        report.wall_seconds(),
        report.wall_gcups()
    );
    Ok(())
}

/// Deliver a rendered report: to `out` when given, stdout otherwise.
fn emit(rendered: &str, out: Option<&str>, what: &str) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, format!("{rendered}\n")).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("{what}: wrote report to {path}");
        }
        None => outln!("{rendered}"),
    }
    Ok(())
}

/// `swdual analyze EVENTS.jsonl [--json|--text] [-o FILE]` — audit a
/// recorded journal against the scheduler's promises. Takes one
/// positional path, so it parses its own arguments.
fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let mut path: Option<&str> = None;
    let mut json = false;
    let mut text = false;
    let mut out: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--text" => text = true,
            "-o" | "--out" => {
                out = Some(
                    args.get(i + 1)
                        .ok_or_else(|| format!("flag {} needs a value", args[i]))?,
                );
                i += 1;
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(format!(
                    "unknown analyze flag {other:?} (--json|--text|-o FILE)"
                ))
            }
            other => {
                if path.is_some() {
                    return Err("analyze takes exactly one journal path".into());
                }
                path = Some(other);
            }
        }
        i += 1;
    }
    let path = path.ok_or("usage: swdual analyze EVENTS.jsonl|- [--json|--text] [-o FILE]")?;
    if json && text {
        return Err("--json and --text are mutually exclusive".into());
    }
    let contents = read_input(path)?;
    let report =
        swdual_obs::analysis::analyze_journal(&contents).map_err(|e| format!("{path}: {e}"))?;
    let rendered = if json {
        report.to_json()
    } else {
        report.to_text()
    };
    emit(&rendered, out, "analyze")
}

/// `swdual explain EVENTS.jsonl [--what-if SPEC] [--json|--text]
/// [-o FILE]` — reconstruct a run's causal lineage: critical path,
/// blame attribution over the modelled makespan, and (with
/// `--what-if`) a counterfactual replay of the recorded schedule.
/// Takes one positional path, so it parses its own arguments (like
/// `analyze`).
fn cmd_explain(args: &[String]) -> Result<(), String> {
    let mut path: Option<&str> = None;
    let mut premise: Option<&str> = None;
    let mut json = false;
    let mut text = false;
    let mut out: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--text" => text = true,
            "--what-if" | "-o" | "--out" => {
                let key = args[i].clone();
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag {key} needs a value"))?;
                if key == "--what-if" {
                    premise = Some(value);
                } else {
                    out = Some(value);
                }
                i += 1;
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(format!(
                    "unknown explain flag {other:?} (--what-if SPEC|--json|--text|-o FILE)"
                ))
            }
            other => {
                if path.is_some() {
                    return Err("explain takes exactly one journal path".into());
                }
                path = Some(other);
            }
        }
        i += 1;
    }
    let path = path
        .ok_or("usage: swdual explain EVENTS.jsonl|- [--what-if SPEC] [--json|--text] [-o FILE]")?;
    if json && text {
        return Err("--json and --text are mutually exclusive".into());
    }
    let contents = read_input(path)?;
    let report =
        swdual_obs::explain::explain_journal(&contents).map_err(|e| format!("{path}: {e}"))?;
    let rendered = match premise {
        Some(spec) => {
            let spec = swdual_core::whatif::WhatIf::parse(spec)?;
            let answer = swdual_core::whatif::what_if(&report.replay, &spec)?;
            if json {
                answer.to_json()
            } else {
                answer.to_text()
            }
        }
        None => {
            if json {
                report.to_json()
            } else {
                report.to_text()
            }
        }
    };
    emit(&rendered, out, "explain")
}

/// `swdual profile EVENTS.jsonl [--flame OUT] [--speedscope OUT]
/// [--roofline] [--json] [-o FILE]` — fold a journal into flamegraph /
/// speedscope / roofline views. Takes one positional path, so it
/// parses its own arguments (like `analyze`).
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let mut path: Option<&str> = None;
    let mut flame: Option<&str> = None;
    let mut speedscope: Option<&str> = None;
    let mut roofline = false;
    let mut json = false;
    let mut out: Option<&str> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--roofline" => roofline = true,
            "--json" => json = true,
            "--flame" | "--speedscope" | "-o" | "--out" => {
                let key = args[i].clone();
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag {key} needs a value"))?;
                match key.as_str() {
                    "--flame" => flame = Some(value),
                    "--speedscope" => speedscope = Some(value),
                    _ => out = Some(value),
                }
                i += 1;
            }
            other if other.starts_with('-') => {
                return Err(format!(
                    "unknown profile flag {other:?} \
                     (--flame|--speedscope|--roofline|--json|-o FILE)"
                ))
            }
            other => {
                if path.is_some() {
                    return Err("profile takes exactly one journal path".into());
                }
                path = Some(other);
            }
        }
        i += 1;
    }
    let path = path.ok_or(
        "usage: swdual profile EVENTS.jsonl [--flame OUT.folded] [--speedscope OUT.json] \
         [--roofline] [--json] [-o FILE]",
    )?;
    let contents = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let events =
        swdual_obs::analysis::parse_journal(&contents).map_err(|e| format!("{path}: {e}"))?;
    let profile = swdual_obs::profile::Profile::from_events(&events);
    if let Some(out) = flame {
        let folded = swdual_obs::export::flamegraph_folded(
            &profile,
            swdual_obs::profile::ProfileClock::Modelled,
        );
        std::fs::write(out, folded).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("flame: wrote collapsed stacks (modelled clock) to {out}");
    }
    if let Some(out) = speedscope {
        let doc = swdual_obs::export::speedscope_json(&profile);
        std::fs::write(out, doc).map_err(|e| format!("{out}: {e}"))?;
        eprintln!("speedscope: wrote profile document to {out}");
    }
    // The roofline report is the default view when no export was
    // requested, and can always be asked for explicitly.
    if roofline || json || out.is_some() || (flame.is_none() && speedscope.is_none()) {
        let report = profile.roofline();
        let rendered = if json {
            report.to_json()
        } else {
            report.to_text()
        };
        emit(&rendered, out, "profile")?;
    }
    Ok(())
}

/// Print the dashboard for the watchdog's current fold. On a TTY the
/// screen is cleared so `top` redraws in place; piped output gets the
/// frames sequentially, separated by a blank line.
fn draw_dashboard(status: &swdual_obs::watch::WatchStatus) {
    use std::io::IsTerminal;
    if std::io::stdout().is_terminal() {
        print!("\x1b[2J\x1b[H");
        outln!("{}", swdual_core::live::render_dashboard(status));
    } else {
        outln!("{}\n", swdual_core::live::render_dashboard(status));
    }
}

/// Connect to a live socket, retrying briefly so `swdual top` can be
/// launched in the same breath as (or just before) the search that
/// binds it.
#[cfg(unix)]
fn connect_live(path: &str) -> Result<std::os::unix::net::UnixStream, String> {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
    loop {
        match std::os::unix::net::UnixStream::connect(path) {
            Ok(stream) => return Ok(stream),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(format!(
                        "{path}: {e} (is the search running with --live-socket?)"
                    ));
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
        }
    }
}

/// Follow a live socket: fold each streamed journal line through the
/// watchdog, redraw every `refresh`, final frame on EOF.
#[cfg(unix)]
fn top_follow_socket(
    stream: std::os::unix::net::UnixStream,
    refresh: std::time::Duration,
) -> Result<(), String> {
    use std::io::BufRead;

    stream
        .set_read_timeout(Some(std::time::Duration::from_millis(50)))
        .map_err(|e| format!("live stream: {e}"))?;
    let mut reader = std::io::BufReader::new(stream);
    let mut dog = swdual_obs::watch::Watchdog::new(swdual_obs::watch::WatchConfig::default());
    let mut line = String::new();
    let mut header_seen = false;
    let mut dirty = true;
    let mut last_draw: Option<std::time::Instant> = None;
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => break, // clean EOF: the run ended and we caught up
            Ok(_) => {
                let trimmed = line.trim();
                if !trimmed.is_empty() {
                    if header_seen {
                        if let Ok(event) = swdual_obs::journal::parse_event_line(trimmed) {
                            dog.observe(&event);
                            dirty = true;
                        }
                    } else {
                        swdual_obs::journal::validate_header(trimmed)
                            .map_err(|e| format!("live stream: {e}"))?;
                        header_seen = true;
                    }
                }
                line.clear();
            }
            // Timeout slice with no new events (a partial line, if
            // any, stays buffered in `line` and completes next read).
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(format!("live stream: {e}")),
        }
        if dirty && last_draw.is_none_or(|t| t.elapsed() >= refresh) {
            draw_dashboard(&dog.status());
            dirty = false;
            last_draw = Some(std::time::Instant::now());
        }
    }
    draw_dashboard(&dog.status());
    eprintln!("top: stream ended");
    Ok(())
}

/// `swdual top SOCKET|EVENTS.jsonl [--refresh-ms MS]` — live
/// per-worker dashboard. A Unix-socket source (a `--live-socket`
/// search) is followed until the run ends; a journal file (or `-`)
/// renders the run's final state once.
fn cmd_top(args: &[String]) -> Result<(), String> {
    let mut source: Option<&str> = None;
    let mut refresh_ms: u64 = 250;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--refresh-ms" => {
                refresh_ms = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("--refresh-ms needs a millisecond count")?;
                i += 1;
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown top flag {other:?} (--refresh-ms MS)"));
            }
            other => {
                if source.is_some() {
                    return Err("top takes exactly one source".into());
                }
                source = Some(other);
            }
        }
        i += 1;
    }
    let source = source.ok_or("usage: swdual top SOCKET|EVENTS.jsonl [--refresh-ms MS]")?;

    // A regular file (or stdin) is a recorded journal: fold it whole
    // and render the end-of-run dashboard.
    if source == "-" || std::path::Path::new(source).is_file() {
        let contents = read_input(source)?;
        let events =
            swdual_obs::journal::parse_journal(&contents).map_err(|e| format!("{source}: {e}"))?;
        let mut dog = swdual_obs::watch::Watchdog::new(swdual_obs::watch::WatchConfig::default());
        for event in &events {
            dog.observe(event);
        }
        draw_dashboard(&dog.status());
        return Ok(());
    }

    #[cfg(unix)]
    {
        let stream = connect_live(source)?;
        top_follow_socket(stream, std::time::Duration::from_millis(refresh_ms.max(1)))
    }
    #[cfg(not(unix))]
    {
        let _ = refresh_ms;
        Err(format!(
            "{source}: live sockets need a Unix platform; pass a journal file instead"
        ))
    }
}

/// One compact `swdual tail` line per journal event.
fn render_event_line(event: &swdual_obs::Event) -> String {
    match event.kind {
        swdual_obs::EventKind::Span => format!(
            "{:9.3}s  {:<14} {} (+{:.3}s)",
            event.wall_start,
            event.track.label(),
            event.name,
            event.wall_dur
        ),
        swdual_obs::EventKind::Instant => format!(
            "{:9.3}s  {:<14} {}",
            event.wall_start,
            event.track.label(),
            event.name
        ),
    }
}

/// Print one tailed journal line (shared by the file and stdin
/// paths): alerts always, other events unless `--alerts-only`.
fn tail_emit(trimmed: &str, alerts_only: bool) {
    let Ok(event) = swdual_obs::journal::parse_event_line(trimmed) else {
        return; // tolerate torn writes while following
    };
    if event.is_alert() {
        for alert in swdual_obs::watch::alerts_from_events(std::slice::from_ref(&event)) {
            outln!("{}", swdual_core::live::render_alert_line(&alert));
        }
    } else if !alerts_only {
        outln!("{}", render_event_line(&event));
    }
}

/// `swdual tail EVENTS.jsonl [--follow] [--alerts-only]` — stream a
/// journal (or stdin with `-`) line by line; `--follow` keeps reading
/// as the file grows, `--alerts-only` filters to watchdog alerts.
fn cmd_tail(args: &[String]) -> Result<(), String> {
    use std::io::BufRead;

    let mut source: Option<&str> = None;
    let mut follow = false;
    let mut alerts_only = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--follow" => follow = true,
            "--alerts-only" => alerts_only = true,
            other if other.starts_with('-') && other != "-" => {
                return Err(format!(
                    "unknown tail flag {other:?} (--follow|--alerts-only)"
                ));
            }
            other => {
                if source.is_some() {
                    return Err("tail takes exactly one journal path".into());
                }
                source = Some(other);
            }
        }
        i += 1;
    }
    let source = source.ok_or("usage: swdual tail EVENTS.jsonl|- [--follow] [--alerts-only]")?;

    let mut header_seen = false;
    let mut handle_line = |trimmed: &str| -> Result<(), String> {
        if trimmed.is_empty() {
            return Ok(());
        }
        if header_seen {
            tail_emit(trimmed, alerts_only);
        } else {
            swdual_obs::journal::validate_header(trimmed).map_err(|e| format!("{source}: {e}"))?;
            header_seen = true;
        }
        Ok(())
    };

    if source == "-" {
        let stdin = std::io::stdin();
        for line in stdin.lock().lines() {
            let line = line.map_err(|e| format!("stdin: {e}"))?;
            handle_line(line.trim())?;
        }
        return Ok(());
    }

    let file = std::fs::File::open(source).map_err(|e| format!("{source}: {e}"))?;
    let mut reader = std::io::BufReader::new(file);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                if !follow {
                    return Ok(());
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            }
            Ok(_) => {
                if follow && !line.ends_with('\n') {
                    // Torn tail while the writer is mid-line: back off
                    // until the newline lands, then re-read the line.
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    reader
                        .seek_relative(-(line.len() as i64))
                        .map_err(|e| format!("{source}: {e}"))?;
                    continue;
                }
                handle_line(line.trim())?;
            }
            Err(e) => return Err(format!("{source}: {e}")),
        }
    }
}

/// `swdual diff BASE.jsonl HEAD.jsonl [...]` / `swdual diff --bench
/// [LEDGER.json]` — compare two runs (or the last two entries of each
/// bench in the trend ledger) and optionally gate on regressions.
/// Returns the process exit code so `--fail-on-regression` can fail
/// the build after still printing the full report.
fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut paths: Vec<&str> = Vec::new();
    let mut bench = false;
    let mut bench_name: Option<&str> = None;
    let mut profile = false;
    let mut json = false;
    let mut text = false;
    let mut out: Option<&str> = None;
    let mut fail_on_regression = false;
    let mut exact_only = false;
    let mut threshold: Option<f64> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench" => bench = true,
            "--profile" => profile = true,
            "--json" => json = true,
            "--text" => text = true,
            "--fail-on-regression" => fail_on_regression = true,
            "--exact-only" => exact_only = true,
            "--bench-name" | "--threshold" | "-o" | "--out" => {
                let key = args[i].clone();
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag {key} needs a value"))?;
                match key.as_str() {
                    "--bench-name" => bench_name = Some(value.as_str()),
                    "--threshold" => {
                        threshold = Some(
                            value
                                .parse()
                                .map_err(|_| "--threshold must be a percentage")?,
                        )
                    }
                    _ => out = Some(value.as_str()),
                }
                i += 1;
            }
            other if other.starts_with('-') => {
                return Err(format!(
                    "unknown diff flag {other:?} (--bench|--bench-name NAME|--profile|\
                     --json|--text|--threshold PCT|--fail-on-regression|--exact-only|-o FILE)"
                ))
            }
            other => paths.push(other),
        }
        i += 1;
    }
    if json && text {
        return Err("--json and --text are mutually exclusive".into());
    }
    let mut opts = swdual_obs::diff::DiffOptions {
        include_profile: profile,
        ..Default::default()
    };
    if let Some(pct) = threshold {
        if !(0.0..=100.0).contains(&pct) {
            return Err("--threshold must be a percentage in [0, 100]".into());
        }
        opts.wall_tolerance = pct / 100.0;
    }
    let report = if bench {
        if paths.len() > 1 {
            return Err("diff --bench takes at most one ledger path".into());
        }
        let ledger_path = paths.first().copied().unwrap_or("BENCH_trend.json");
        let ledger = swdual_obs::trend::TrendLedger::load(std::path::Path::new(ledger_path))?;
        swdual_obs::trend::diff_trend(&ledger, bench_name, &opts)?
    } else {
        if bench_name.is_some() {
            return Err("--bench-name only applies with --bench".into());
        }
        let (base_path, head_path) = match paths.as_slice() {
            [base, head] => (*base, *head),
            _ => {
                return Err(
                    "usage: swdual diff BASE.jsonl HEAD.jsonl [--profile] [--json|--text] \
                     [--threshold PCT] [--fail-on-regression] [--exact-only] [-o FILE]"
                        .into(),
                )
            }
        };
        let base = std::fs::read_to_string(base_path).map_err(|e| format!("{base_path}: {e}"))?;
        let head = std::fs::read_to_string(head_path).map_err(|e| format!("{head_path}: {e}"))?;
        swdual_obs::diff::diff_journals(&base, &head, &opts)
            .map_err(|e| format!("{base_path} vs {head_path}: {e}"))?
    };
    let rendered = if json {
        report.to_json()
    } else {
        report.to_text()
    };
    emit(&rendered, out, "diff")?;
    if fail_on_regression {
        let regressed = report.regressions(exact_only);
        if !regressed.is_empty() {
            eprintln!(
                "diff: FAIL — {} regressed metric(s): {}",
                regressed.len(),
                regressed.join(", ")
            );
            return Ok(ExitCode::FAILURE);
        }
        let lane = if exact_only {
            "modelled-clock lane clean"
        } else {
            "no regressions"
        };
        eprintln!("diff: PASS — {lane}");
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_convert(flags: HashMap<String, String>) -> Result<(), String> {
    let input = flags.get("input").ok_or("--input is required")?;
    let output = flags.get("output").ok_or("--output is required")?;
    let set = load_set(input)?;
    if output.ends_with(".sqb") {
        sqb::write_file(&set, output).map_err(|e| e.to_string())?;
    } else {
        fasta::write_file(&set, output).map_err(|e| e.to_string())?;
    }
    outln!(
        "converted {} sequences ({} residues): {input} -> {output}",
        set.len(),
        set.total_residues()
    );
    Ok(())
}

fn cmd_generate(flags: HashMap<String, String>) -> Result<(), String> {
    let n: usize = flags
        .get("sequences")
        .ok_or("--sequences is required")?
        .parse()
        .map_err(|_| "--sequences must be a number")?;
    let mean: f64 = flags
        .get("mean-len")
        .ok_or("--mean-len is required")?
        .parse()
        .map_err(|_| "--mean-len must be a number")?;
    let output = flags.get("output").ok_or("--output is required")?;
    let seed: u64 = flags
        .get("seed")
        .map_or(Ok(2014), |v| v.parse().map_err(|_| "--seed"))?;
    let set = synthetic_database("synth", n, LengthModel::protein_database(mean), seed);
    if output.ends_with(".sqb") {
        sqb::write_file(&set, output).map_err(|e| e.to_string())?;
    } else {
        fasta::write_file(&set, output).map_err(|e| e.to_string())?;
    }
    outln!(
        "generated {} sequences ({} residues) -> {output}",
        set.len(),
        set.total_residues()
    );
    Ok(())
}

fn cmd_info(flags: HashMap<String, String>) -> Result<(), String> {
    let path = flags.get("db").ok_or("--db is required")?;
    let set = load_set(path)?;
    outln!("file:      {path}");
    outln!("alphabet:  {:?}", set.alphabet);
    outln!("sequences: {}", set.len());
    outln!("residues:  {}", set.total_residues());
    if let Some(stats) = LengthStats::of_set(&set) {
        outln!(
            "lengths:   min {} / median {} / mean {:.1} / max {} (sd {:.1})",
            stats.min,
            stats.median,
            stats.mean,
            stats.max,
            stats.std_dev
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("{}", usage());
        return ExitCode::from(2);
    };
    // `analyze`, `explain`, `profile`, `diff`, `top` and `tail` take
    // positional journal paths and parse their own arguments; every other command
    // uses `--key value` flags. `diff` picks its own exit code so
    // `--fail-on-regression` can fail the build after printing the
    // report.
    if matches!(
        cmd.as_str(),
        "analyze" | "explain" | "profile" | "diff" | "top" | "tail"
    ) {
        let result = match cmd.as_str() {
            "analyze" => cmd_analyze(&args[1..]).map(|()| ExitCode::SUCCESS),
            "explain" => cmd_explain(&args[1..]).map(|()| ExitCode::SUCCESS),
            "profile" => cmd_profile(&args[1..]).map(|()| ExitCode::SUCCESS),
            "top" => cmd_top(&args[1..]).map(|()| ExitCode::SUCCESS),
            "tail" => cmd_tail(&args[1..]).map(|()| ExitCode::SUCCESS),
            _ => cmd_diff(&args[1..]),
        };
        return match result {
            Ok(code) => code,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let result = match cmd.as_str() {
        "search" => cmd_search(flags),
        "convert" => cmd_convert(flags),
        "generate" => cmd_generate(flags),
        "info" => cmd_info(flags),
        "help" | "--help" | "-h" => {
            outln!("{}", usage());
            Ok(())
        }
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
