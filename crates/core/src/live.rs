//! In-process live observability drivers: the watchdog thread that
//! turns bus events into journaled alerts while the search runs, the
//! `--live-socket` journal streamer `swdual top` connects to, and the
//! terminal dashboard renderer shared by `top` and `tail`.
//!
//! Both drivers are amenities in the same sense as progress
//! reporting: they ride the event bus / journal cursor, never the
//! search's data path, and a failure to start them degrades the run
//! to "not watched" instead of aborting it.

use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use swdual_obs::export::{journal_event_line, journal_header};
use swdual_obs::watch::{record_alert, Alert, WatchConfig, WatchStatus, Watchdog};
use swdual_obs::Obs;

/// Poll slice for the driver loops: short enough that alerts land
/// within ~10 ms of the event that tripped them.
const SLICE: Duration = Duration::from_millis(10);

/// Background thread folding the live bus through an incremental
/// [`Watchdog`]: every alert it trips is journaled (`alert_<kind>`
/// fault instants), counted (`swdual_alerts_total{kind=...}`), echoed
/// to stderr, and — because journaling goes through the same recorder
/// — broadcast to every other bus subscriber, live.
pub struct WatchdogDriver {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl WatchdogDriver {
    /// Start watching `obs` with `cfg` thresholds. No-op on a disabled
    /// recorder (the subscription is inert). Spawn failure degrades to
    /// an unwatched run, mirroring the progress reporter.
    pub fn start(obs: &Obs, cfg: WatchConfig) -> WatchdogDriver {
        let subscriber = obs.subscribe();
        let recorder = obs.clone();
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("swdual-watchdog".into())
            .spawn(move || {
                let mut dog = Watchdog::new(cfg);
                let mut buf = Vec::new();
                loop {
                    let stopping = stop_flag.load(Ordering::Relaxed);
                    buf.clear();
                    subscriber.drain_into(&mut buf);
                    for event in &buf {
                        for alert in dog.observe(event) {
                            record_alert(&recorder, &alert);
                            eprintln!("watchdog: [{}] {}", alert.kind.label(), alert.message);
                        }
                    }
                    if stopping {
                        // One final drain happened above; anything the
                        // run publishes after finish() is post-hoc.
                        break;
                    }
                    std::thread::sleep(SLICE);
                }
            })
            .map_err(|e| eprintln!("watchdog: disabled ({e})"))
            .ok();
        WatchdogDriver { stop, handle }
    }

    /// Stop after a final drain, so alerts tripped by the run's last
    /// events are still journaled before the report is built.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WatchdogDriver {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Streams the growing journal over a Unix domain socket so `swdual
/// top <socket>` (or any line reader) can watch a run from outside
/// the process. Each connected client receives a schema header and
/// then every event from the beginning of the run, in journal order,
/// via a per-client cursor over [`Obs::events_since`] — late joiners
/// catch up, and a slow client never drops events or slows the run.
pub struct LiveStream {
    stop: Arc<AtomicBool>,
    path: PathBuf,
    acceptor: Option<JoinHandle<()>>,
    writers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl LiveStream {
    /// Bind `path` (an existing stale socket file is replaced) and
    /// start accepting clients.
    #[cfg(unix)]
    pub fn start(obs: &Obs, path: &str) -> std::io::Result<LiveStream> {
        use std::os::unix::net::UnixListener;

        let path_buf = PathBuf::from(path);
        let _ = std::fs::remove_file(&path_buf);
        let listener = UnixListener::bind(&path_buf)?;
        listener.set_nonblocking(true)?;

        let stop = Arc::new(AtomicBool::new(false));
        let writers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let stop_flag = Arc::clone(&stop);
        let writer_pool = Arc::clone(&writers);
        let recorder = obs.clone();
        let acceptor = std::thread::Builder::new()
            .name("swdual-live-accept".into())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let client_obs = recorder.clone();
                        let client_stop = Arc::clone(&stop_flag);
                        if let Ok(handle) = std::thread::Builder::new()
                            .name("swdual-live-writer".into())
                            .spawn(move || stream_client(stream, client_obs, client_stop))
                        {
                            writer_pool.lock().expect("live writer pool").push(handle);
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        if stop_flag.load(Ordering::Relaxed) {
                            break;
                        }
                        std::thread::sleep(SLICE);
                    }
                    Err(_) => break,
                }
            })
            .map_err(|e| eprintln!("live: acceptor disabled ({e})"))
            .ok();

        Ok(LiveStream {
            stop,
            path: path_buf,
            acceptor,
            writers,
        })
    }

    #[cfg(not(unix))]
    pub fn start(_obs: &Obs, _path: &str) -> std::io::Result<LiveStream> {
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "--live-socket requires Unix domain sockets",
        ))
    }

    /// Stop accepting, let every connected client drain to the end of
    /// the journal (they see EOF), join all threads, unlink the
    /// socket.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.writers.lock().expect("live writer pool"));
        for handle in handles {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for LiveStream {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Pump one client: header first, then journal lines from a cursor.
/// Exits when the client hangs up or when the run stopped and the
/// cursor caught up (clean EOF for the client).
#[cfg(unix)]
fn stream_client(stream: std::os::unix::net::UnixStream, obs: Obs, stop: Arc<AtomicBool>) {
    let _ = stream.set_nonblocking(false);
    let mut out = std::io::BufWriter::new(stream);
    // Streaming header: the final event count is unknowable up front;
    // validate_header checks the schema only.
    if writeln!(out, "{}", journal_header(0)).is_err() {
        return;
    }
    let mut cursor = 0usize;
    loop {
        let batch = obs.events_since(cursor);
        if batch.is_empty() {
            if out.flush().is_err() {
                return;
            }
            if stop.load(Ordering::Relaxed) {
                return; // caught up after the run ended: clean EOF
            }
            std::thread::sleep(SLICE);
            continue;
        }
        cursor += batch.len();
        for event in &batch {
            if writeln!(out, "{}", journal_event_line(event)).is_err() {
                return;
            }
        }
    }
}

/// Render the watchdog's fold as a terminal dashboard: run header,
/// per-worker utilization bars with queue depth and observed/estimate
/// ratio, then active alerts. Pure string rendering — `swdual top`
/// redraws it, tests assert on it.
pub fn render_dashboard(status: &WatchStatus) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "swdual top · wall {:7.3}s · tasks {}/{}",
        status.wall, status.tasks_done, status.tasks_total
    ));
    if status.has_bound {
        out.push_str(&format!(
            " · modelled makespan {:.3}s / 2\u{3bb} {:.3}s",
            status.running_makespan,
            2.0 * status.lambda
        ));
    } else {
        out.push_str(&format!(
            " · modelled makespan {:.3}s",
            status.running_makespan
        ));
    }
    if status.eta_modelled > 0.0 {
        out.push_str(&format!(" · ETA {:.3}s (modelled)", status.eta_modelled));
    }
    out.push('\n');

    for w in &status.workers {
        let util = if status.wall > 0.0 {
            (w.busy_wall / status.wall).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let filled = (util * 20.0).round() as usize;
        let bar: String = std::iter::repeat_n('#', filled)
            .chain(std::iter::repeat_n('-', 20 - filled))
            .collect();
        let species = if w.is_gpu { "gpu" } else { "cpu" };
        let state = if w.dead { " DEAD" } else { "" };
        out.push_str(&format!(
            "  worker {:<3} [{species}] [{bar}] {:3.0}% · q {:<2} · ratio {:4.2} · {} job(s){state}\n",
            w.worker,
            util * 100.0,
            w.queue_depth,
            w.ratio,
            w.jobs,
        ));
    }

    if !status.alerts.is_empty() {
        out.push_str("alerts:\n");
        for alert in &status.alerts {
            out.push_str(&format!("  [{}] {}\n", alert.kind.label(), alert.message));
        }
    }
    out
}

/// Render one `swdual tail` line for a fired alert.
pub fn render_alert_line(alert: &Alert) -> String {
    format!(
        "alert[{}] @ {:.3}s {}",
        alert.kind.label(),
        alert.wall,
        alert.message
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use swdual_obs::Track;

    #[test]
    fn watchdog_driver_journals_alerts_from_live_events() {
        let obs = Obs::enabled();
        let driver = WatchdogDriver::start(&obs, WatchConfig::default());
        // A straggling worker: estimate 1.0, observed 3.0.
        obs.instant(
            Track::Master,
            "task_model",
            &[("task", 0.0), ("p_cpu", 1.0), ("p_gpu", 1.0)],
        );
        obs.instant(
            Track::Master,
            "task_dispatch",
            &[
                ("task", 0.0),
                ("worker", 0.0),
                ("seq", 0.0),
                ("decision", 0.0),
            ],
        );
        obs.span(
            Track::Worker(0),
            "task-0",
            0.0,
            0.01,
            Some((0.0, 3.0)),
            &[("task", 0.0)],
        );
        driver.finish();
        let alerts = swdual_obs::watch::alerts_from_events(&obs.events());
        assert!(
            alerts
                .iter()
                .any(|a| a.kind == swdual_obs::watch::AlertKind::Straggler && a.worker == Some(0)),
            "{alerts:?}"
        );
        // And the metrics registry counted it under the kind label.
        assert_eq!(
            obs.metrics()
                .snapshot()
                .counter_value("alerts", &[("kind", "straggler")]),
            Some(1.0)
        );
    }

    #[test]
    fn watchdog_driver_on_disabled_obs_is_inert() {
        let obs = Obs::disabled();
        let driver = WatchdogDriver::start(&obs, WatchConfig::default());
        driver.finish();
        assert_eq!(obs.event_count(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn live_stream_serves_the_whole_journal_to_a_late_client() {
        use std::io::BufRead;

        let obs = Obs::enabled();
        obs.instant(Track::Master, "early", &[]);
        let dir = std::env::temp_dir().join(format!("swdual-live-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("t.sock");
        let stream = LiveStream::start(&obs, sock.to_str().unwrap()).expect("bind");
        obs.instant(Track::Master, "mid", &[]);

        // Connect after events already exist: the cursor catches up.
        let client = std::os::unix::net::UnixStream::connect(&sock).expect("connect");
        obs.instant(Track::Worker(1), "late", &[]);
        std::thread::sleep(Duration::from_millis(50));
        stream.finish(); // writers drain to EOF

        let reader = std::io::BufReader::new(client);
        let lines: Vec<String> = reader.lines().map(|l| l.unwrap()).collect();
        swdual_obs::journal::validate_header(&lines[0]).expect("streamed header validates");
        let doc = lines.join("\n");
        let events = swdual_obs::journal::parse_journal(&doc).expect("streamed journal parses");
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["early", "mid", "late"]);
        // Socket file unlinked on finish.
        assert!(!sock.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dashboard_renders_bars_and_alerts() {
        let mut dog = Watchdog::new(WatchConfig::default());
        for event in [
            swdual_obs::Event {
                track: Track::Master,
                name: "task_model".into(),
                kind: swdual_obs::EventKind::Instant,
                wall_start: 0.0,
                wall_dur: 0.0,
                virt_start: None,
                virt_dur: None,
                args: vec![
                    ("task".to_string(), 0.0),
                    ("p_cpu".to_string(), 1.0),
                    ("p_gpu".to_string(), 1.0),
                ],
            },
            swdual_obs::Event {
                track: Track::Worker(0),
                name: "task-0".into(),
                kind: swdual_obs::EventKind::Span,
                wall_start: 0.0,
                wall_dur: 0.5,
                virt_start: Some(0.0),
                virt_dur: Some(3.0),
                args: vec![("task".to_string(), 0.0)],
            },
        ] {
            dog.observe(&event);
        }
        let text = render_dashboard(&dog.status());
        assert!(text.contains("tasks 1/1"), "{text}");
        assert!(text.contains("worker 0"), "{text}");
        assert!(text.contains('#'), "{text}");
        assert!(text.contains("alerts:"), "{text}");
        assert!(text.contains("[straggler]"), "{text}");
    }
}
