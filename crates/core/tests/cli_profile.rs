//! End-to-end `swdual profile` smoke: a `search --profile` journal
//! folds into valid collapsed stacks, a speedscope document whose
//! frame totals reconcile with `swdual analyze`'s makespan, and a
//! roofline report — on both fault-free and faulted runs.

use std::path::{Path, PathBuf};
use std::process::Command;

fn swdual() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swdual"))
}

fn work_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swdual_cli_profile_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_db(db: &PathBuf) {
    let out = swdual()
        .args([
            "generate",
            "--sequences",
            "24",
            "--mean-len",
            "80",
            "--seed",
            "3",
        ])
        .arg("--output")
        .arg(db)
        .output()
        .expect("run swdual generate");
    assert!(out.status.success(), "generate failed: {out:?}");
}

/// Run `search --profile --journal-out`, optionally with a fault plan.
fn profiled_search(db: &PathBuf, journal: &PathBuf, fault_plan: Option<&str>) {
    let mut cmd = swdual();
    cmd.arg("search")
        .arg("--db")
        .arg(db)
        .arg("--queries")
        .arg(db)
        .args(["--cpus", "2", "--gpus", "1", "--top", "3", "--profile"])
        .arg("--journal-out")
        .arg(journal);
    if let Some(plan) = fault_plan {
        cmd.args(["--fault-plan", plan, "--min-job-timeout-ms", "60"]);
    }
    let out = cmd.output().expect("run swdual search");
    assert!(out.status.success(), "search failed: {out:?}");
}

/// Fold `journal` into all three views and check them; returns the
/// parsed speedscope document.
fn profile_and_check(dir: &Path, journal: &PathBuf) -> serde_json::Value {
    let folded_path = dir.join("out.folded");
    let speedscope_path = dir.join("out.speedscope.json");
    let out = swdual()
        .arg("profile")
        .arg(journal)
        .arg("--flame")
        .arg(&folded_path)
        .arg("--speedscope")
        .arg(&speedscope_path)
        .arg("--roofline")
        .output()
        .expect("run swdual profile");
    assert!(out.status.success(), "profile failed: {out:?}");

    // Roofline text on stdout, finite throughout.
    let roofline = String::from_utf8(out.stdout).unwrap();
    assert!(roofline.contains("roofline report"), "{roofline}");
    assert!(roofline.contains("device 0"), "{roofline}");
    assert!(
        !roofline.contains("NaN") && !roofline.contains("inf"),
        "{roofline}"
    );

    // Collapsed stacks: `frame;frame <integer µs>` lines with phase
    // detail from `--profile`.
    let folded = std::fs::read_to_string(&folded_path).unwrap();
    assert!(!folded.is_empty(), "empty folded output");
    for line in folded.lines() {
        let (stack, weight) = line.rsplit_once(' ').expect("folded line shape");
        assert!(!stack.is_empty());
        let weight: u64 = weight.parse().expect("integer microseconds");
        assert!(weight > 0, "zero-weight stacks must be dropped: {line}");
    }
    assert!(
        folded.lines().any(|l| l.contains(";dp_inner ")),
        "phase frames missing from a --profile run:\n{folded}"
    );

    // Speedscope document parses and carries both clocks.
    let doc: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&speedscope_path).unwrap())
            .expect("speedscope JSON parses");
    assert_eq!(
        doc.get("$schema").and_then(|v| v.as_str()),
        Some("https://www.speedscope.app/file-format-schema.json")
    );
    let profiles = doc.get("profiles").and_then(|v| v.as_array()).unwrap();
    assert_eq!(profiles.len(), 2, "one profile per clock");
    doc
}

/// Sum the self-weights of every speedscope sample rooted at a
/// `worker:` frame in the named profile.
fn worker_seconds(doc: &serde_json::Value, profile_name: &str) -> f64 {
    let frames = doc
        .get("shared")
        .and_then(|s| s.get("frames"))
        .and_then(|v| v.as_array())
        .unwrap();
    let frame_name = |idx: u64| -> &str {
        frames[idx as usize]
            .get("name")
            .and_then(|v| v.as_str())
            .unwrap()
    };
    let profile = doc
        .get("profiles")
        .and_then(|v| v.as_array())
        .unwrap()
        .iter()
        .find(|p| p.get("name").and_then(|v| v.as_str()) == Some(profile_name))
        .unwrap_or_else(|| panic!("no profile named {profile_name:?}"));
    let samples = profile.get("samples").and_then(|v| v.as_array()).unwrap();
    let weights = profile.get("weights").and_then(|v| v.as_array()).unwrap();
    assert_eq!(samples.len(), weights.len());
    let mut total = 0.0;
    for (sample, weight) in samples.iter().zip(weights) {
        let root = sample.as_array().unwrap()[0].as_u64().unwrap();
        if frame_name(root).starts_with("worker:") {
            total += weight.as_f64().unwrap();
        }
    }
    total
}

/// `swdual analyze --json` on the same journal, for reconciliation.
fn analyze_json(journal: &PathBuf) -> serde_json::Value {
    let out = swdual()
        .arg("analyze")
        .arg(journal)
        .arg("--json")
        .output()
        .expect("run swdual analyze");
    assert!(out.status.success(), "analyze failed: {out:?}");
    serde_json::from_str(&String::from_utf8(out.stdout).unwrap()).unwrap()
}

/// The acceptance criterion: total time attributed to worker stacks
/// reconciles with the auditor's per-worker busy totals within 1%, on
/// both clocks, and the profile's modelled makespan matches.
fn assert_reconciles(doc: &serde_json::Value, audit: &serde_json::Value) {
    let workers = audit.get("workers").and_then(|v| v.as_array()).unwrap();
    let busy_wall: f64 = workers
        .iter()
        .map(|w| w.get("busy_wall").and_then(|v| v.as_f64()).unwrap())
        .sum();
    let busy_modelled: f64 = workers
        .iter()
        .map(|w| w.get("busy_modelled").and_then(|v| v.as_f64()).unwrap())
        .sum();
    let wall = worker_seconds(doc, "wall clock");
    let modelled = worker_seconds(doc, "modelled clock");
    assert!(
        (wall - busy_wall).abs() <= 1e-9 + 0.01 * busy_wall.abs(),
        "wall: profile {wall} vs audit {busy_wall}"
    );
    assert!(
        (modelled - busy_modelled).abs() <= 1e-9 + 0.01 * busy_modelled.abs(),
        "modelled: profile {modelled} vs audit {busy_modelled}"
    );
}

#[test]
fn profile_exports_reconcile_on_a_fault_free_run() {
    let dir = work_dir("clean");
    let db = dir.join("db.fasta");
    let journal = dir.join("events.jsonl");
    generate_db(&db);
    profiled_search(&db, &journal, None);
    let doc = profile_and_check(&dir, &journal);
    assert_reconciles(&doc, &analyze_json(&journal));
}

#[test]
fn profile_exports_reconcile_across_a_device_fault() {
    let dir = work_dir("faulted");
    let db = dir.join("db.fasta");
    let journal = dir.join("events.jsonl");
    generate_db(&db);
    // Worker 0 is the GPU; fail its device after one kernel so work
    // re-routes to the CPU workers mid-run.
    profiled_search(&db, &journal, Some("0:device@1"));
    let doc = profile_and_check(&dir, &journal);
    assert_reconciles(&doc, &analyze_json(&journal));
}

#[test]
fn profile_without_exports_defaults_to_roofline_text() {
    let dir = work_dir("default");
    let db = dir.join("db.fasta");
    let journal = dir.join("events.jsonl");
    generate_db(&db);
    profiled_search(&db, &journal, None);
    let out = swdual()
        .arg("profile")
        .arg(journal)
        .output()
        .expect("run swdual profile");
    assert!(out.status.success(), "profile failed: {out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("roofline report"), "{text}");
    assert!(text.contains("GCUPS"), "{text}");
}

#[test]
fn profile_json_emits_a_machine_readable_roofline() {
    let dir = work_dir("json");
    let db = dir.join("db.fasta");
    let journal = dir.join("events.jsonl");
    generate_db(&db);
    profiled_search(&db, &journal, None);
    let out = swdual()
        .arg("profile")
        .arg(journal)
        .arg("--json")
        .output()
        .expect("run swdual profile");
    assert!(out.status.success(), "profile failed: {out:?}");
    let doc: serde_json::Value = serde_json::from_str(&String::from_utf8(out.stdout).unwrap())
        .expect("roofline --json parses");
    let devices = doc.get("devices").and_then(|v| v.as_array()).unwrap();
    assert!(!devices.is_empty());
    for dev in devices {
        for field in [
            "kernel_seconds",
            "useful_cells",
            "peak_gcups",
            "busy_seconds",
        ] {
            let v = dev.get(field).and_then(|v| v.as_f64()).unwrap();
            assert!(v.is_finite() && v >= 0.0, "{field} = {v}");
        }
        let buckets = dev.get("buckets").and_then(|v| v.as_array()).unwrap();
        assert!(!buckets.is_empty(), "length buckets missing");
    }
    let makespan = doc
        .get("modelled_makespan")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(makespan.is_finite() && makespan > 0.0);
}

#[test]
fn profile_dash_o_writes_the_roofline_to_a_file() {
    let dir = work_dir("outfile");
    let db = dir.join("db.fasta");
    let journal = dir.join("events.jsonl");
    let out_path = dir.join("roofline.txt");
    generate_db(&db);
    profiled_search(&db, &journal, None);
    let out = swdual()
        .arg("profile")
        .arg(journal)
        .arg("-o")
        .arg(&out_path)
        .output()
        .expect("run swdual profile -o");
    assert!(out.status.success(), "profile failed: {out:?}");
    assert!(
        out.stdout.is_empty(),
        "-o must redirect the report off stdout"
    );
    let written = std::fs::read_to_string(&out_path).unwrap();
    assert!(written.contains("roofline report"), "{written}");
}

#[test]
fn profile_rejects_bad_arguments() {
    let out = swdual()
        .arg("profile")
        .output()
        .expect("run swdual profile");
    assert!(!out.status.success(), "missing path must fail");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage"), "unhelpful error: {err}");

    let out = swdual()
        .args(["profile", "a.jsonl", "--bogus"])
        .output()
        .expect("run swdual profile");
    assert!(!out.status.success(), "unknown flag must fail");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--bogus"), "unhelpful error: {err}");
}
