//! End-to-end `swdual diff` smoke: a run diffed against itself is
//! all-NEUTRAL and exits zero; a faulted run of the same seed flags
//! the fault counts and the makespan; the `--fail-on-regression
//! --exact-only` gate fires on a run whose modelled clock was slowed
//! (a straggler) and names the regressed modelled metrics; `-o`
//! redirects the report to a file; `--bench` diffs the trend ledger.

use std::path::{Path, PathBuf};
use std::process::Command;

fn swdual() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swdual"))
}

fn work_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swdual_cli_diff_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_db(db: &Path) {
    let out = swdual()
        .args([
            "generate",
            "--sequences",
            "24",
            "--mean-len",
            "80",
            "--seed",
            "3",
        ])
        .arg("--output")
        .arg(db)
        .output()
        .expect("run swdual generate");
    assert!(out.status.success(), "generate failed: {out:?}");
}

/// Run a search over `db` (also used as the queries) recording a
/// journal, optionally under a fault plan.
fn record_journal(db: &Path, journal: &Path, fault_plan: Option<&str>) {
    let mut cmd = swdual();
    cmd.arg("search")
        .arg("--db")
        .arg(db)
        .arg("--queries")
        .arg(db)
        .args(["--cpus", "2", "--gpus", "1", "--top", "3"])
        .arg("--journal-out")
        .arg(journal)
        .arg("--profile");
    if let Some(plan) = fault_plan {
        cmd.args(["--fault-plan", plan]);
    }
    let out = cmd.output().expect("run swdual search");
    assert!(out.status.success(), "search failed: {out:?}");
}

fn metric<'a>(report: &'a serde_json::Value, name: &str) -> Option<&'a serde_json::Value> {
    report
        .get("metrics")?
        .as_array()?
        .iter()
        .find(|m| m.get("name").and_then(|n| n.as_str()) == Some(name))
}

#[test]
fn diffing_a_run_against_itself_is_all_neutral_and_exits_zero() {
    let dir = work_dir("identity");
    let db = dir.join("db.fasta");
    let journal = dir.join("run.jsonl");
    generate_db(&db);
    record_journal(&db, &journal, None);

    let out = swdual()
        .arg("diff")
        .arg(&journal)
        .arg(&journal)
        .args(["--profile", "--fail-on-regression"])
        .output()
        .expect("run swdual diff");
    assert!(out.status.success(), "self-diff must exit zero: {out:?}");
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("NEUTRAL"), "{text}");
    assert!(text.contains("0 improved · 0 regressed"), "{text}");

    // And the machine view: every delta is exactly zero.
    let json = swdual()
        .arg("diff")
        .arg(&journal)
        .arg(&journal)
        .args(["--profile", "--json"])
        .output()
        .expect("run swdual diff --json");
    assert!(json.status.success());
    let report: serde_json::Value =
        serde_json::from_str(&String::from_utf8(json.stdout).unwrap()).unwrap();
    let metrics = report.get("metrics").unwrap().as_array().unwrap();
    assert!(!metrics.is_empty());
    for m in metrics {
        assert_eq!(
            m.get("class").and_then(|c| c.as_str()),
            Some("Neutral"),
            "{m:?}"
        );
        assert_eq!(m.get("delta").and_then(|d| d.as_f64()), Some(0.0), "{m:?}");
    }
}

#[test]
fn faulted_run_diff_flags_fault_counts_and_makespan() {
    let dir = work_dir("faults");
    let db = dir.join("db.fasta");
    let base = dir.join("base.jsonl");
    let head = dir.join("crashed.jsonl");
    generate_db(&db);
    record_journal(&db, &base, None);
    // Worker 1 crashes on its first job: same inputs, same seed, but
    // the run now carries fault events and redispatched work.
    record_journal(&db, &head, Some("1:crash@0"));

    let json = swdual()
        .arg("diff")
        .arg(&base)
        .arg(&head)
        .arg("--json")
        .output()
        .expect("run swdual diff --json");
    assert!(json.status.success());
    let report: serde_json::Value =
        serde_json::from_str(&String::from_utf8(json.stdout).unwrap()).unwrap();

    let total = metric(&report, "fault.total").expect("fault.total metric");
    assert_eq!(
        total.get("class").and_then(|c| c.as_str()),
        Some("Regressed")
    );
    assert!(total.get("delta").and_then(|d| d.as_f64()).unwrap() >= 1.0);
    let crash = metric(&report, "fault.worker_crash").expect("fault.worker_crash metric");
    assert_eq!(
        crash.get("class").and_then(|c| c.as_str()),
        Some("Regressed")
    );
    let makespan = metric(&report, "makespan.modelled").expect("makespan.modelled metric");
    assert_ne!(
        makespan.get("class").and_then(|c| c.as_str()),
        Some("Neutral"),
        "redispatching a crashed worker's tasks must move the modelled makespan: {makespan:?}"
    );

    // The exact-only gate fires and names the fault counters.
    let gate = swdual()
        .arg("diff")
        .arg(&base)
        .arg(&head)
        .args(["--fail-on-regression", "--exact-only"])
        .output()
        .expect("run swdual diff gate");
    assert!(!gate.status.success(), "gate must fail on a faulted run");
    let err = String::from_utf8(gate.stderr).unwrap();
    assert!(err.contains("FAIL"), "{err}");
    assert!(err.contains("fault."), "{err}");
}

#[test]
fn straggled_run_fails_the_exact_only_gate_naming_modelled_metrics() {
    let dir = work_dir("straggle");
    let db = dir.join("db.fasta");
    let base = dir.join("base.jsonl");
    let head = dir.join("straggled.jsonl");
    generate_db(&db);
    record_journal(&db, &base, None);
    // Worker 0's modelled seconds are multiplied by 3 (an artificially
    // slowed estimator); wall time barely moves, the modelled clock
    // regresses deterministically.
    record_journal(&db, &head, Some("0:straggle@0x3"));

    let gate = swdual()
        .arg("diff")
        .arg(&base)
        .arg(&head)
        .args(["--fail-on-regression", "--exact-only"])
        .output()
        .expect("run swdual diff gate");
    assert!(
        !gate.status.success(),
        "exact-only gate must fail on a straggled run: {gate:?}"
    );
    let err = String::from_utf8(gate.stderr).unwrap();
    assert!(err.contains("FAIL"), "{err}");
    assert!(
        err.contains("modelled"),
        "the regressed modelled-clock metrics must be named: {err}"
    );
    let text = String::from_utf8(gate.stdout).unwrap();
    assert!(text.contains("REGRESSED"), "{text}");
    assert!(text.contains("modelled"), "{text}");
}

#[test]
fn dash_o_writes_the_report_to_a_file() {
    let dir = work_dir("outfile");
    let db = dir.join("db.fasta");
    let journal = dir.join("run.jsonl");
    let out_path = dir.join("diff.txt");
    generate_db(&db);
    record_journal(&db, &journal, None);

    let out = swdual()
        .arg("diff")
        .arg(&journal)
        .arg(&journal)
        .arg("-o")
        .arg(&out_path)
        .output()
        .expect("run swdual diff -o");
    assert!(out.status.success(), "{out:?}");
    assert!(
        out.stdout.is_empty(),
        "-o must redirect the report off stdout"
    );
    let written = std::fs::read_to_string(&out_path).unwrap();
    assert!(written.contains("run diff"), "{written}");
    assert!(written.contains("NEUTRAL"), "{written}");
}

#[test]
fn bench_mode_gates_on_the_trend_ledger() {
    let dir = work_dir("bench");
    let ledger = dir.join("BENCH_trend.json");
    std::fs::write(
        &ledger,
        r#"{
  "schema": "swdual-trend/1",
  "entries": [
    {
      "bench": "obs_overhead",
      "unix_seconds": 1.0,
      "unit": "ns_per_op",
      "metrics": [{"name": "per_job_enabled", "value": 700.0}]
    },
    {
      "bench": "obs_overhead",
      "unix_seconds": 2.0,
      "unit": "ns_per_op",
      "metrics": [{"name": "per_job_enabled", "value": 900.0}]
    }
  ]
}"#,
    )
    .unwrap();

    // +28.6% is outside the default 5% wall tolerance: the gate fires.
    let gate = swdual()
        .arg("diff")
        .arg("--bench")
        .arg(&ledger)
        .arg("--fail-on-regression")
        .output()
        .expect("run swdual diff --bench");
    assert!(!gate.status.success(), "{gate:?}");
    let err = String::from_utf8(gate.stderr).unwrap();
    assert!(err.contains("obs_overhead.per_job_enabled"), "{err}");

    // ...but is inside an explicit 50% threshold.
    let relaxed = swdual()
        .arg("diff")
        .arg("--bench")
        .arg(&ledger)
        .args(["--fail-on-regression", "--threshold", "50"])
        .output()
        .expect("run swdual diff --bench --threshold");
    assert!(relaxed.status.success(), "{relaxed:?}");
}
