//! Live-bus acceptance: with the watchdog armed, a straggling worker's
//! alert must be observable on the event bus by an independent
//! subscriber *while the search is still running* — not reconstructed
//! from the journal afterwards — and must name the offending worker.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use swdual_core::prelude::*;
use swdual_runtime::FaultPlan;

fn workload() -> (SequenceSet, SequenceSet) {
    let database = swdual_core::datagen::synthetic_database(
        "live",
        32,
        swdual_core::datagen::LengthModel::Fixed(90),
        9,
    );
    let queries = swdual_core::datagen::queries_from_database(
        &database,
        8,
        1,
        usize::MAX,
        &swdual_core::datagen::MutationProfile::homolog(),
        8,
    );
    (database, queries)
}

#[test]
fn straggler_alert_arrives_on_the_live_bus_before_the_run_completes() {
    let (database, queries) = workload();
    let obs = Obs::enabled();
    let subscriber = obs.subscribe();

    // Poller thread: drains the bus continuously and records, at the
    // moment the straggler alert flows past, whether the search had
    // already returned. `straggle@100x3` keeps worker 0 ~100 ms/job
    // slower on the wall clock, so the run is still going when its
    // first span (ratio 3.0 on the modelled clock) trips the alert.
    let run_done = Arc::new(AtomicBool::new(false));
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let run_done = Arc::clone(&run_done);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen: Option<(swdual_obs::Event, bool)> = None;
            loop {
                for event in subscriber.drain() {
                    if seen.is_none() && event.name == "alert_straggler" {
                        seen = Some((event, run_done.load(Ordering::SeqCst)));
                    }
                }
                if stop.load(Ordering::SeqCst) {
                    return (seen, subscriber.dropped());
                }
                std::thread::sleep(Duration::from_millis(1));
            }
        })
    };

    let report = SearchBuilder::new()
        .database(database)
        .queries(queries)
        .workers(vec![WorkerSpec::cpu_default(), WorkerSpec::cpu_default()])
        .top_k(3)
        .observability(obs.clone())
        .fault_plan(FaultPlan::parse("0:straggle@100x3").unwrap())
        .watchdog(swdual_obs::watch::WatchConfig::default())
        .run();
    run_done.store(true, Ordering::SeqCst);
    stop.store(true, Ordering::SeqCst);
    let (seen, dropped) = poller.join().expect("poller thread");

    let (event, done_when_seen) = seen.expect("straggler alert must reach the live subscriber");
    assert!(
        !done_when_seen,
        "alert must be observed live, before the run completed"
    );
    assert!(
        event.args.iter().any(|(k, v)| k == "worker" && *v == 0.0),
        "alert must name worker 0: {:?}",
        event.args
    );
    assert_eq!(dropped, 0, "default subscriber capacity must not drop");

    // The report surfaces the same alerts post-hoc.
    let alerts = report.alerts();
    assert!(
        alerts
            .iter()
            .any(|a| a.kind == swdual_obs::watch::AlertKind::Straggler && a.worker == Some(0)),
        "{alerts:?}"
    );
    // And the metrics registry counted it under the kind label.
    assert_eq!(
        obs.metrics()
            .snapshot()
            .counter_value("alerts", &[("kind", "straggler")]),
        Some(1.0)
    );
    // Hits are unaffected by watching: every query still reports.
    assert_eq!(report.hits().len(), 8);
}
