//! End-to-end `swdual analyze` smoke: a real search journal audits
//! cleanly (the 2λ guarantee is reported and holds), and incompatible
//! journals are rejected with a clear error.

use std::path::PathBuf;
use std::process::Command;

fn swdual() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swdual"))
}

fn work_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swdual_cli_analyze_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate_db(db: &PathBuf) {
    let out = swdual()
        .args([
            "generate",
            "--sequences",
            "24",
            "--mean-len",
            "80",
            "--seed",
            "3",
        ])
        .arg("--output")
        .arg(db)
        .output()
        .expect("run swdual generate");
    assert!(out.status.success(), "generate failed: {out:?}");
}

#[test]
fn analyze_reports_the_two_lambda_bound_from_a_search_journal() {
    let dir = work_dir("bound");
    let db = dir.join("db.fasta");
    let journal = dir.join("events.jsonl");
    generate_db(&db);

    let search = swdual()
        .arg("search")
        .arg("--db")
        .arg(&db)
        .arg("--queries")
        .arg(&db)
        .args(["--cpus", "1", "--gpus", "1", "--top", "3"])
        .arg("--journal-out")
        .arg(&journal)
        .output()
        .expect("run swdual search");
    assert!(search.status.success(), "search failed: {search:?}");

    // JSON output: machine-checkable bound fields.
    let analyze = swdual()
        .arg("analyze")
        .arg(&journal)
        .arg("--json")
        .output()
        .expect("run swdual analyze");
    assert!(analyze.status.success(), "analyze failed: {analyze:?}");
    let stdout = String::from_utf8(analyze.stdout).unwrap();
    let report: serde_json::Value =
        serde_json::from_str(&stdout).expect("analyze --json emits valid JSON");
    assert_eq!(
        report.get("schema").and_then(|v| v.as_str()),
        Some("swdual-journal/2")
    );
    let lambda = report.get("lambda").and_then(|v| v.as_f64()).unwrap();
    let bound = report
        .get("two_lambda_bound")
        .and_then(|v| v.as_f64())
        .expect("two_lambda_bound field");
    assert!(lambda > 0.0);
    assert!((bound - 2.0 * lambda).abs() < 1e-9);
    assert_eq!(
        report.get("has_bound").and_then(|v| v.as_bool()),
        Some(true)
    );
    assert_eq!(
        report.get("bound_holds").and_then(|v| v.as_bool()),
        Some(true),
        "2λ guarantee must hold on a healthy run"
    );
    let makespan = report
        .get("modelled_makespan")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(makespan > 0.0 && makespan <= bound * (1.0 + 1e-9));

    // Default text output mentions the guarantee, for humans.
    let text = swdual()
        .arg("analyze")
        .arg(&journal)
        .output()
        .expect("run swdual analyze (text)");
    assert!(text.status.success());
    let text = String::from_utf8(text.stdout).unwrap();
    assert!(text.contains("2λ guarantee"), "{text}");
    assert!(text.contains("HOLDS"), "{text}");
}

#[test]
fn analyze_dash_o_writes_the_report_to_a_file() {
    let dir = work_dir("outfile");
    let db = dir.join("db.fasta");
    let journal = dir.join("events.jsonl");
    let out_path = dir.join("report.json");
    generate_db(&db);
    let search = swdual()
        .arg("search")
        .arg("--db")
        .arg(&db)
        .arg("--queries")
        .arg(&db)
        .args(["--cpus", "1", "--gpus", "1", "--top", "3"])
        .arg("--journal-out")
        .arg(&journal)
        .output()
        .expect("run swdual search");
    assert!(search.status.success(), "search failed: {search:?}");

    let out = swdual()
        .arg("analyze")
        .arg(&journal)
        .arg("--json")
        .arg("-o")
        .arg(&out_path)
        .output()
        .expect("run swdual analyze -o");
    assert!(out.status.success(), "analyze failed: {out:?}");
    assert!(
        out.stdout.is_empty(),
        "-o must redirect the report off stdout"
    );
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&out_path).unwrap())
            .expect("written report parses");
    assert_eq!(
        report.get("schema").and_then(|v| v.as_str()),
        Some("swdual-journal/2")
    );
}

#[test]
fn journal_readers_accept_stdin_via_dash() {
    use std::io::Write;
    use std::process::Stdio;

    let dir = work_dir("stdin");
    let db = dir.join("db.fasta");
    let journal = dir.join("events.jsonl");
    generate_db(&db);
    let search = swdual()
        .arg("search")
        .arg("--db")
        .arg(&db)
        .arg("--queries")
        .arg(&db)
        .args(["--cpus", "1", "--gpus", "1", "--top", "3"])
        .arg("--journal-out")
        .arg(&journal)
        .output()
        .expect("run swdual search");
    assert!(search.status.success(), "search failed: {search:?}");
    let contents = std::fs::read_to_string(&journal).unwrap();

    // Each journal reader takes `-` and produces the same report as
    // the file path would.
    let pipe = |args: &[&str]| {
        let mut child = swdual()
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn swdual");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(contents.as_bytes())
            .unwrap();
        let out = child.wait_with_output().expect("wait swdual");
        assert!(out.status.success(), "{args:?} failed: {out:?}");
        String::from_utf8(out.stdout).unwrap()
    };

    let piped = pipe(&["analyze", "-", "--json"]);
    let report: serde_json::Value = serde_json::from_str(&piped).expect("analyze - emits JSON");
    assert_eq!(
        report.get("schema").and_then(|v| v.as_str()),
        Some("swdual-journal/2")
    );
    let from_file = swdual()
        .arg("analyze")
        .arg(&journal)
        .arg("--json")
        .output()
        .expect("run swdual analyze");
    assert_eq!(piped, String::from_utf8(from_file.stdout).unwrap());

    let explained = pipe(&["explain", "-"]);
    assert!(explained.contains("2λ bound"), "{explained}");

    let tailed = pipe(&["tail", "-"]);
    assert!(
        tailed.lines().count() > 4,
        "tail - should echo the run's events: {tailed}"
    );
    assert!(tailed.contains("master"), "{tailed}");
}

#[test]
fn analyze_rejects_incompatible_journals() {
    let dir = work_dir("reject");

    // No schema header at all.
    let headerless = dir.join("headerless.jsonl");
    std::fs::write(
        &headerless,
        "{\"track\":\"master\",\"name\":\"x\",\"kind\":\"instant\",\"wall_start\":0.0}\n",
    )
    .unwrap();
    let out = swdual()
        .arg("analyze")
        .arg(&headerless)
        .output()
        .expect("run swdual analyze");
    assert!(!out.status.success(), "headerless journal must be rejected");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("header"), "unhelpful error: {err}");

    // Wrong schema version.
    let wrong = dir.join("wrong.jsonl");
    std::fs::write(&wrong, "{\"schema\":\"swdual-journal/99\",\"events\":0}\n").unwrap();
    let out = swdual()
        .arg("analyze")
        .arg(&wrong)
        .output()
        .expect("run swdual analyze");
    assert!(!out.status.success(), "wrong schema must be rejected");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("swdual-journal/99"), "unhelpful error: {err}");
}
