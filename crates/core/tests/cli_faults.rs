//! End-to-end CLI fault-injection smoke: the same `--fault-seed`
//! must produce byte-identical hit output across runs (and identical
//! to the fault-free run), and the exported journal must record the
//! injected faults and the recovery re-dispatches.

use std::path::PathBuf;
use std::process::Command;

fn swdual() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swdual"))
}

fn work_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swdual_cli_faults_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn fault_seed_is_deterministic_and_journals_the_recovery() {
    let dir = work_dir("seed");
    let db = dir.join("db.fasta");

    let generate = swdual()
        .args([
            "generate",
            "--sequences",
            "24",
            "--mean-len",
            "80",
            "--seed",
            "9",
        ])
        .arg("--output")
        .arg(&db)
        .output()
        .expect("run swdual generate");
    assert!(generate.status.success(), "generate failed: {generate:?}");

    // Seed 4 on a 2-worker pool derives `1:crash@0` (notified crash on
    // the CPU worker's first job), so the run must exercise detection
    // and re-dispatch, not just survive by luck.
    let faulted = |journal: Option<&PathBuf>| {
        let mut cmd = swdual();
        cmd.arg("search")
            .arg("--db")
            .arg(&db)
            .arg("--queries")
            .arg(&db)
            .args(["--cpus", "1", "--gpus", "1", "--top", "3"])
            .args(["--fault-seed", "4"]);
        if let Some(path) = journal {
            cmd.arg("--journal-out").arg(path);
        }
        let out = cmd.output().expect("run swdual search");
        assert!(out.status.success(), "faulted search failed: {out:?}");
        out.stdout
    };

    // Byte-identical hits across repeated faulted runs.
    let journal = dir.join("events.jsonl");
    let first = faulted(Some(&journal));
    let second = faulted(None);
    assert_eq!(
        first, second,
        "same --fault-seed must reproduce byte-identical hit output"
    );

    // And identical to the fault-free run: faults move work between
    // workers, they never change scores.
    let healthy = swdual()
        .arg("search")
        .arg("--db")
        .arg(&db)
        .arg("--queries")
        .arg(&db)
        .args(["--cpus", "1", "--gpus", "1", "--top", "3"])
        .output()
        .expect("run swdual search");
    assert!(
        healthy.status.success(),
        "healthy search failed: {healthy:?}"
    );
    assert_eq!(
        healthy.stdout, first,
        "faulted hits must match the fault-free run"
    );

    // The journal records the fault and the recovery.
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    let mut saw_death = false;
    let mut saw_redispatch = false;
    for line in journal_text.lines() {
        let v: serde_json::Value = serde_json::from_str(line).expect("journal line is JSON");
        if v.get("track").and_then(|t| t.as_str()) == Some("faults") {
            match v.get("name").and_then(|n| n.as_str()) {
                Some("worker_death") => saw_death = true,
                Some("task_redispatch") => saw_redispatch = true,
                _ => {}
            }
        }
    }
    assert!(saw_death, "journal must record the injected worker death");
    assert!(
        saw_redispatch,
        "journal must record the orphaned tasks being re-dispatched"
    );

    std::fs::remove_dir_all(&dir).ok();
}
