//! End-to-end tests of the `swdual` CLI binary: generate → convert →
//! info → search, driving the compiled executable like a user would.

use std::process::Command;

fn swdual() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swdual"))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("swdual_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn full_cli_workflow() {
    let fasta = tmp("cli_db.fasta");
    let sqb = tmp("cli_db.sqb");

    // generate
    let out = swdual()
        .args(["generate", "--sequences", "120", "--mean-len", "150"])
        .args(["--output", fasta.to_str().unwrap(), "--seed", "9"])
        .output()
        .expect("run swdual generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("generated 120 sequences"));

    // convert
    let out = swdual()
        .args(["convert", "--input", fasta.to_str().unwrap()])
        .args(["--output", sqb.to_str().unwrap()])
        .output()
        .expect("run swdual convert");
    assert!(out.status.success());

    // info agrees between the two formats
    let info_fasta = swdual()
        .args(["info", "--db", fasta.to_str().unwrap()])
        .output()
        .unwrap();
    let info_sqb = swdual()
        .args(["info", "--db", sqb.to_str().unwrap()])
        .output()
        .unwrap();
    let fa = String::from_utf8_lossy(&info_fasta.stdout).replace(fasta.to_str().unwrap(), "");
    let sq = String::from_utf8_lossy(&info_sqb.stdout).replace(sqb.to_str().unwrap(), "");
    assert_eq!(
        fa.lines().skip(1).collect::<Vec<_>>(),
        sq.lines().skip(1).collect::<Vec<_>>()
    );
    assert!(fa.contains("sequences: 120"));

    // search the database against three of its own sequences
    let queries = tmp("cli_q.fasta");
    let db_text = std::fs::read_to_string(&fasta).unwrap();
    let records: Vec<&str> = db_text.split('>').filter(|r| !r.is_empty()).collect();
    let mut q_text = String::new();
    for r in records.iter().take(3) {
        q_text.push('>');
        q_text.push_str(r);
    }
    std::fs::write(&queries, q_text).unwrap();

    let out = swdual()
        .args(["search", "--db", sqb.to_str().unwrap()])
        .args(["--queries", queries.to_str().unwrap()])
        .args(["--cpus", "1", "--gpus", "1", "--top", "2", "--evalues"])
        .output()
        .expect("run swdual search");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Each query is a database member: its top hit is itself.
    for qid in ["synth_0", "synth_1", "synth_2"] {
        let block = stdout
            .split("Query ")
            .find(|b| b.starts_with(&format!("{qid}:")))
            .unwrap_or_else(|| panic!("no block for {qid} in:\n{stdout}"));
        let first_hit = block.lines().nth(1).expect("at least one hit");
        assert!(
            first_hit.contains(qid),
            "{qid} not its own top hit: {first_hit}"
        );
        assert!(first_hit.contains('E'), "E-value missing: {first_hit}");
    }

    for f in [&fasta, &sqb, &queries] {
        std::fs::remove_file(f).ok();
    }
}

#[test]
fn bad_usage_exits_nonzero() {
    let out = swdual().arg("search").output().unwrap(); // missing --db
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--db"));

    let out = swdual().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    let out = swdual().output().unwrap(); // no command -> usage
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
}

#[test]
fn help_succeeds() {
    let out = swdual().arg("help").output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("swdual"));
}
