//! End-to-end device-zoo CLI coverage: `swdual search --device-class`
//! runs every zoo member (and a mixed pool), the journal audit names
//! each worker's class and reports the 2λ guarantee HOLDS, and the
//! acceptance scenario — a deliberately miscalibrated straggler — shows
//! online re-optimization improving the modelled makespan by ≥ 15%
//! over the static plan, via `swdual diff`.

use std::path::{Path, PathBuf};
use std::process::Command;

fn swdual() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swdual"))
}

fn work_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swdual_cli_zoo_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn generate(path: &Path, sequences: usize, mean_len: usize, seed: u64) {
    let out = swdual()
        .args([
            "generate",
            "--sequences",
            &sequences.to_string(),
            "--mean-len",
            &mean_len.to_string(),
            "--seed",
            &seed.to_string(),
        ])
        .arg("--output")
        .arg(path)
        .output()
        .expect("run swdual generate");
    assert!(out.status.success(), "generate failed: {out:?}");
}

fn analyze_json(journal: &Path) -> serde_json::Value {
    let out = swdual()
        .arg("analyze")
        .arg(journal)
        .arg("--json")
        .output()
        .expect("run swdual analyze --json");
    assert!(out.status.success(), "analyze failed: {out:?}");
    serde_json::from_str(&String::from_utf8(out.stdout).unwrap())
        .expect("analyze --json emits valid JSON")
}

fn worker_classes(report: &serde_json::Value) -> Vec<(bool, String)> {
    report
        .get("workers")
        .and_then(|w| w.as_array())
        .expect("workers array")
        .iter()
        .map(|w| {
            (
                w.get("is_gpu").and_then(|v| v.as_bool()).unwrap(),
                w.get("device_class")
                    .and_then(|v| v.as_str())
                    .unwrap()
                    .to_string(),
            )
        })
        .collect()
}

#[test]
fn every_zoo_class_searches_cleanly_and_holds_the_two_lambda_bound() {
    let dir = work_dir("classes");
    let db = dir.join("db.fasta");
    generate(&db, 24, 80, 3);

    for class in ["c2050", "phi", "knl", "bioseal"] {
        let journal = dir.join(format!("{class}.jsonl"));
        let search = swdual()
            .arg("search")
            .arg("--db")
            .arg(&db)
            .arg("--queries")
            .arg(&db)
            .args(["--cpus", "1", "--gpus", "1", "--top", "3"])
            .args(["--device-class", class])
            .arg("--journal-out")
            .arg(&journal)
            .output()
            .expect("run swdual search");
        assert!(
            search.status.success(),
            "search({class}) failed: {search:?}"
        );

        let report = analyze_json(&journal);
        assert_eq!(
            report.get("bound_holds").and_then(|v| v.as_bool()),
            Some(true),
            "2λ must HOLD for class {class}"
        );
        let classes = worker_classes(&report);
        assert!(
            classes.iter().any(|(gpu, name)| *gpu && name == class),
            "audit must name the GPU's class {class}: {classes:?}"
        );

        // The human-readable audit names the class too.
        let text = swdual()
            .arg("analyze")
            .arg(&journal)
            .output()
            .expect("run swdual analyze");
        assert!(text.status.success());
        let text = String::from_utf8(text.stdout).unwrap();
        assert!(
            text.contains(&format!("gpu[{class}]")),
            "text audit must name {class}: {text}"
        );
    }
}

#[test]
fn mixed_zoo_runs_one_gpu_per_class_and_holds_the_bound() {
    let dir = work_dir("mixed");
    let db = dir.join("db.fasta");
    let journal = dir.join("mixed.jsonl");
    generate(&db, 24, 80, 5);

    let search = swdual()
        .arg("search")
        .arg("--db")
        .arg(&db)
        .arg("--queries")
        .arg(&db)
        .args(["--cpus", "2", "--top", "3"])
        .args(["--device-class", "mixed"])
        .arg("--journal-out")
        .arg(&journal)
        .output()
        .expect("run swdual search");
    assert!(search.status.success(), "mixed search failed: {search:?}");

    let report = analyze_json(&journal);
    assert_eq!(
        report.get("bound_holds").and_then(|v| v.as_bool()),
        Some(true),
        "2λ must HOLD on the mixed zoo"
    );
    let classes = worker_classes(&report);
    for class in ["c2050", "phi", "knl", "bioseal"] {
        assert!(
            classes.iter().any(|(gpu, name)| *gpu && name == class),
            "mixed zoo must field a {class} GPU: {classes:?}"
        );
    }
}

#[test]
fn explicit_class_list_and_gpu_count_conflicts_are_rejected() {
    let dir = work_dir("conflict");
    let db = dir.join("db.fasta");
    generate(&db, 12, 60, 7);

    // A two-entry class list with --gpus 3 is a contradiction.
    let out = swdual()
        .arg("search")
        .arg("--db")
        .arg(&db)
        .arg("--queries")
        .arg(&db)
        .args(["--cpus", "1", "--gpus", "3"])
        .args(["--device-class", "knl,bioseal"])
        .output()
        .expect("run swdual search");
    assert!(!out.status.success(), "conflicting counts must be rejected");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("conflicts"), "unhelpful error: {err}");

    // Unknown class names are named in the error.
    let out = swdual()
        .arg("search")
        .arg("--db")
        .arg(&db)
        .arg("--queries")
        .arg(&db)
        .args(["--cpus", "1", "--device-class", "tpu9000"])
        .output()
        .expect("run swdual search");
    assert!(!out.status.success(), "unknown class must be rejected");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("tpu9000"), "unhelpful error: {err}");
}

/// The acceptance scenario: worker 1 (a CPU) straggles at 3× while its
/// declared rate model is 2× optimistic. The static plan eats the full
/// miscalibration; re-optimization detects the skew and re-plans the
/// remainder, improving the modelled makespan by at least 15%.
#[test]
fn reopt_improves_the_miscalibrated_straggler_by_fifteen_percent() {
    let dir = work_dir("reopt");
    let db = dir.join("db.fasta");
    let queries = dir.join("q.fasta");
    let static_journal = dir.join("static.jsonl");
    let reopt_journal = dir.join("reopt.jsonl");
    generate(&db, 24, 110, 11);
    generate(&queries, 8, 110, 13);

    let run = |journal: &Path, reopt: bool| {
        let mut cmd = swdual();
        cmd.arg("search")
            .arg("--db")
            .arg(&db)
            .arg("--queries")
            .arg(&queries)
            .args(["--cpus", "2", "--gpus", "1", "--top", "3"])
            .args(["--fault-plan", "1:straggle@0x3"])
            .args(["--prior-scale", "1:2.0"])
            .arg("--journal-out")
            .arg(journal);
        if reopt {
            cmd.args(["--reopt-threshold", "1.5"]);
        }
        let out = cmd.output().expect("run swdual search");
        assert!(out.status.success(), "search failed: {out:?}");
    };
    run(&static_journal, false);
    run(&reopt_journal, true);

    // The re-opt journal records at least one re-plan, and the audit
    // reports it.
    let report = analyze_json(&reopt_journal);
    let replans = report
        .get("reopt_replans")
        .and_then(|v| v.as_u64())
        .expect("reopt_replans field");
    assert!(replans >= 1, "the miscalibrated run must re-plan");

    // `swdual diff static reopt`: the modelled makespan improves ≥ 15%.
    let diff = swdual()
        .arg("diff")
        .arg(&static_journal)
        .arg(&reopt_journal)
        .arg("--json")
        .output()
        .expect("run swdual diff --json");
    assert!(diff.status.success(), "diff failed: {diff:?}");
    let diff: serde_json::Value =
        serde_json::from_str(&String::from_utf8(diff.stdout).unwrap()).unwrap();
    let makespan = diff
        .get("metrics")
        .and_then(|m| m.as_array())
        .unwrap()
        .iter()
        .find(|m| m.get("name").and_then(|n| n.as_str()) == Some("makespan.modelled"))
        .expect("makespan.modelled metric");
    assert_eq!(
        makespan.get("class").and_then(|c| c.as_str()),
        Some("Improved"),
        "re-opt must improve the modelled makespan: {makespan:?}"
    );
    let relative = makespan.get("relative").and_then(|r| r.as_f64()).unwrap();
    assert!(
        relative <= -0.15,
        "re-opt must improve the modelled makespan by >= 15%, got {:.1}%",
        -100.0 * relative
    );

    // Both runs complete every task exactly once: re-planning moves
    // work, it never changes what is computed.
    let tasks = |journal: &Path| {
        analyze_json(journal)
            .get("tasks")
            .and_then(|v| v.as_u64())
            .expect("tasks field")
    };
    assert_eq!(tasks(&static_journal), 8);
    assert_eq!(tasks(&reopt_journal), 8);
}
