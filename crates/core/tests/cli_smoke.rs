//! End-to-end CLI smoke: generate a tiny database, run `swdual search`
//! with the observability exports, and validate the artifacts.

use std::path::PathBuf;
use std::process::Command;

fn swdual() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swdual"))
}

fn work_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swdual_cli_smoke_{name}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn search_with_trace_out_writes_valid_nonempty_trace() {
    let dir = work_dir("trace");
    let db = dir.join("db.fasta");
    let trace = dir.join("trace.json");
    let metrics = dir.join("metrics.prom");
    let journal = dir.join("events.jsonl");

    let generate = swdual()
        .args([
            "generate",
            "--sequences",
            "24",
            "--mean-len",
            "80",
            "--seed",
            "9",
        ])
        .arg("--output")
        .arg(&db)
        .output()
        .expect("run swdual generate");
    assert!(generate.status.success(), "generate failed: {generate:?}");

    let search = swdual()
        .arg("search")
        .arg("--db")
        .arg(&db)
        .arg("--queries")
        .arg(&db)
        .args(["--cpus", "1", "--gpus", "1", "--top", "3"])
        .arg("--trace-out")
        .arg(&trace)
        .arg("--metrics-out")
        .arg(&metrics)
        .arg("--journal-out")
        .arg(&journal)
        .output()
        .expect("run swdual search");
    assert!(search.status.success(), "search failed: {search:?}");

    // The Chrome trace parses and holds real span events on both the
    // actual (worker) and planned tracks.
    let text = std::fs::read_to_string(&trace).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("trace is valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace must be non-empty");
    // Worker "actual" spans live on the modelled-execution process
    // (pid 2, tid >= 10); the planned schedule is its own process
    // (pid 3). See swdual_obs::export::chrome_trace.
    let spans_on = |pid: u64, tid_floor: u64| {
        events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .filter(|e| e.get("pid").and_then(|p| p.as_u64()) == Some(pid))
            .filter(|e| e.get("tid").and_then(|t| t.as_u64()).unwrap_or(0) >= tid_floor)
            .count()
    };
    assert!(spans_on(2, 10) > 0, "no actual worker spans in trace");
    assert!(spans_on(3, 10) > 0, "no planned spans in trace");

    // Metrics and journal exist and carry content.
    let metrics_text = std::fs::read_to_string(&metrics).unwrap();
    assert!(metrics_text.contains("swdual_events_total"));
    let journal_text = std::fs::read_to_string(&journal).unwrap();
    assert!(journal_text.lines().count() > 0);
    for line in journal_text.lines() {
        serde_json::from_str::<serde_json::Value>(line).expect("journal line is JSON");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn search_without_flags_writes_no_artifacts() {
    let dir = work_dir("noflags");
    let db = dir.join("db.fasta");
    let generate = swdual()
        .args([
            "generate",
            "--sequences",
            "8",
            "--mean-len",
            "40",
            "--seed",
            "3",
        ])
        .arg("--output")
        .arg(&db)
        .output()
        .expect("run swdual generate");
    assert!(generate.status.success());

    let search = swdual()
        .arg("search")
        .arg("--db")
        .arg(&db)
        .arg("--queries")
        .arg(&db)
        .args(["--cpus", "1", "--gpus", "0"])
        .output()
        .expect("run swdual search");
    assert!(search.status.success(), "search failed: {search:?}");
    std::fs::remove_dir_all(&dir).ok();
}
