//! Schedule-quality metrics used by the experiments.

use crate::binsearch::lower_bound;
use crate::platform::PlatformSpec;
use crate::schedule::Schedule;
use crate::task::TaskSet;
use serde::{Deserialize, Serialize};

/// A summary row describing one schedule — what the paper's tables
/// report per (policy, worker-count) cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleMetrics {
    /// Makespan `C_max` (seconds).
    pub makespan: f64,
    /// Total idle time across PEs up to `C_max`.
    pub total_idle: f64,
    /// Mean PE utilisation in `[0, 1]`.
    pub utilisation: f64,
    /// Proven lower bound on the optimal makespan for this instance.
    pub lower_bound: f64,
    /// `makespan / lower_bound` — an upper bound on distance from
    /// optimal (1.0 means provably optimal).
    pub ratio_to_lb: f64,
    /// Number of tasks placed on GPUs.
    pub gpu_tasks: usize,
    /// Number of tasks placed on CPUs.
    pub cpu_tasks: usize,
}

/// Compute the full metric row for a schedule.
pub fn evaluate(schedule: &Schedule, tasks: &TaskSet, platform: &PlatformSpec) -> ScheduleMetrics {
    let makespan = schedule.makespan();
    let lb = lower_bound(tasks, platform);
    let gpu_tasks = schedule
        .placements
        .iter()
        .filter(|p| p.pe.kind == crate::schedule::PeKind::Gpu)
        .count();
    ScheduleMetrics {
        makespan,
        total_idle: schedule.total_idle(platform),
        utilisation: schedule.utilisation(platform),
        lower_bound: lb,
        ratio_to_lb: if lb > 0.0 { makespan / lb } else { 1.0 },
        gpu_tasks,
        cpu_tasks: schedule.placements.len() - gpu_tasks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binsearch::{dual_approx_schedule, BinarySearchConfig};
    use crate::policies::self_scheduling;

    #[test]
    fn metrics_of_dual_schedule() {
        let tasks = TaskSet::from_times(&[(10.0, 2.0), (8.0, 2.0), (4.0, 2.0), (2.0, 2.0)]);
        let platform = PlatformSpec::new(2, 2);
        let out = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
        let m = evaluate(&out.schedule, &tasks, &platform);
        assert!(m.makespan > 0.0);
        assert!(m.ratio_to_lb >= 1.0 - 1e-9);
        assert!(m.ratio_to_lb <= 2.0 + 1e-9);
        assert_eq!(m.gpu_tasks + m.cpu_tasks, 4);
        assert!(m.utilisation > 0.0 && m.utilisation <= 1.0);
        assert!(m.total_idle >= 0.0);
    }

    #[test]
    fn idle_time_dual_vs_self_scheduling() {
        // The paper claims SWDUAL leaves "almost no idle time"; at
        // minimum it must not be worse than naive self-scheduling on a
        // skewed instance.
        let tasks = TaskSet::from_times(&[
            (100.0, 2.0),
            (100.0, 2.0),
            (100.0, 2.5),
            (100.0, 2.5),
            (3.0, 2.9),
            (3.0, 2.9),
        ]);
        let platform = PlatformSpec::new(2, 2);
        let dual = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
        let selfs = self_scheduling(&tasks, &platform);
        let md = evaluate(&dual.schedule, &tasks, &platform);
        let ms = evaluate(&selfs, &tasks, &platform);
        assert!(md.makespan <= ms.makespan + 1e-9);
    }

    #[test]
    fn empty_schedule_metrics() {
        let m = evaluate(
            &Schedule::default(),
            &TaskSet::default(),
            &PlatformSpec::new(1, 1),
        );
        assert_eq!(m.makespan, 0.0);
        assert_eq!(m.ratio_to_lb, 1.0);
        assert_eq!(m.gpu_tasks, 0);
    }
}
