//! Platform description: `m` CPUs and `k` GPUs.

use serde::{Deserialize, Serialize};

/// The hybrid platform the scheduler targets (paper §III: set `C` of
/// CPUs, set `G` of GPUs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Number of CPU workers (`m`).
    pub cpus: usize,
    /// Number of GPU workers (`k`).
    pub gpus: usize,
}

impl PlatformSpec {
    /// Construct a platform with `m` CPUs and `k` GPUs.
    pub fn new(cpus: usize, gpus: usize) -> PlatformSpec {
        PlatformSpec { cpus, gpus }
    }

    /// Total number of processing elements.
    pub fn total(&self) -> usize {
        self.cpus + self.gpus
    }

    /// The Idgraf node of the paper's §V: 8 CPU cores and 8 Tesla C2050
    /// GPUs (2× quad-core Xeon hosts).
    pub fn idgraf() -> PlatformSpec {
        PlatformSpec { cpus: 8, gpus: 8 }
    }

    /// The worker mix SWDUAL used for `w` total workers in the paper's
    /// §V-A: GPUs are filled first ("the first four workers used on the
    /// SWDUAL execution were GPUs and the last four workers were CPUs"),
    /// and at least one CPU and one GPU are always present ("our
    /// implementation needs at least one CPU and one GPU to execute", so
    /// 3 workers = 2 GPUs + 1 CPU, 4 workers = 3 GPUs + 1 CPU).
    ///
    /// `max_gpus` caps the GPU side (4 in §V-A, 8 in §V-B).
    pub fn swdual_mix(workers: usize, max_gpus: usize) -> PlatformSpec {
        assert!(workers >= 2, "SWDUAL needs at least one CPU and one GPU");
        let gpus = (workers - 1).min(max_gpus);
        PlatformSpec {
            cpus: workers - gpus,
            gpus,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        assert_eq!(PlatformSpec::new(4, 2).total(), 6);
        assert_eq!(PlatformSpec::idgraf().total(), 16);
    }

    #[test]
    fn swdual_mix_matches_paper_description() {
        // §V-A with up to 4 GPUs: 2 -> 1+1, 3 -> 2 GPUs + 1 CPU,
        // 4 -> 3 GPUs + 1 CPU, 8 -> 4 GPUs + 4 CPUs.
        assert_eq!(PlatformSpec::swdual_mix(2, 4), PlatformSpec::new(1, 1));
        assert_eq!(PlatformSpec::swdual_mix(3, 4), PlatformSpec::new(1, 2));
        assert_eq!(PlatformSpec::swdual_mix(4, 4), PlatformSpec::new(1, 3));
        assert_eq!(PlatformSpec::swdual_mix(5, 4), PlatformSpec::new(1, 4));
        assert_eq!(PlatformSpec::swdual_mix(6, 4), PlatformSpec::new(2, 4));
        assert_eq!(PlatformSpec::swdual_mix(8, 4), PlatformSpec::new(4, 4));
        // §V-B with up to 8 GPUs: 8 workers -> 7 GPUs + 1 CPU.
        assert_eq!(PlatformSpec::swdual_mix(8, 8), PlatformSpec::new(1, 7));
    }

    #[test]
    #[should_panic]
    fn swdual_mix_rejects_single_worker() {
        let _ = PlatformSpec::swdual_mix(1, 4);
    }
}
