//! The task model of the paper (§III).
//!
//! A task `Tⱼ` is one unit of allocatable work — in SWDUAL, the
//! comparison of one query sequence against the whole database (§II-C).
//! Each task carries **two** processing times: `pⱼ` when executed on a
//! CPU and `p̄ⱼ` when executed on a GPU. The ratio `pⱼ / p̄ⱼ` is the
//! task's *acceleration factor*; the greedy knapsack prioritises tasks
//! by it.

use serde::{Deserialize, Serialize};

/// One schedulable task with heterogeneous processing times.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Stable identifier (index into the query set in SWDUAL).
    pub id: usize,
    /// Processing time on a CPU (`pⱼ`), seconds.
    pub p_cpu: f64,
    /// Processing time on a GPU (`p̄ⱼ`), seconds.
    pub p_gpu: f64,
}

impl Task {
    /// Construct a task, validating both times are finite and positive.
    ///
    /// # Panics
    /// Panics on non-finite or non-positive processing times — tasks of
    /// zero length are not schedulable work.
    pub fn new(id: usize, p_cpu: f64, p_gpu: f64) -> Task {
        assert!(
            p_cpu.is_finite() && p_cpu > 0.0,
            "p_cpu must be finite and > 0, got {p_cpu}"
        );
        assert!(
            p_gpu.is_finite() && p_gpu > 0.0,
            "p_gpu must be finite and > 0, got {p_gpu}"
        );
        Task { id, p_cpu, p_gpu }
    }

    /// Acceleration factor `pⱼ / p̄ⱼ` — how many times faster this task
    /// runs on a GPU. Greater than 1 means the GPU accelerates it (the
    /// paper's "special instance" assumes this holds for every task).
    #[inline]
    pub fn acceleration(&self) -> f64 {
        self.p_cpu / self.p_gpu
    }

    /// Smaller of the two processing times — the fastest any single PE
    /// can finish this task; used for lower bounds.
    #[inline]
    pub fn min_time(&self) -> f64 {
        self.p_cpu.min(self.p_gpu)
    }
}

/// An instance of the scheduling problem: the full set of tasks.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Create from a task vector.
    pub fn new(tasks: Vec<Task>) -> TaskSet {
        TaskSet { tasks }
    }

    /// Build from `(p_cpu, p_gpu)` pairs, ids assigned in order.
    pub fn from_times(times: &[(f64, f64)]) -> TaskSet {
        TaskSet {
            tasks: times
                .iter()
                .enumerate()
                .map(|(id, &(c, g))| Task::new(id, c, g))
                .collect(),
        }
    }

    /// Number of tasks `n`.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when there are no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The tasks in id order.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Iterate over tasks.
    pub fn iter(&self) -> std::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// Sum of CPU processing times (the area if everything ran on CPUs).
    pub fn total_cpu_area(&self) -> f64 {
        self.tasks.iter().map(|t| t.p_cpu).sum()
    }

    /// Sum of GPU processing times (the area if everything ran on GPUs).
    pub fn total_gpu_area(&self) -> f64 {
        self.tasks.iter().map(|t| t.p_gpu).sum()
    }

    /// Sum over tasks of the *faster* of the two times: an optimistic
    /// total work measure used in makespan lower bounds.
    pub fn total_min_area(&self) -> f64 {
        self.tasks.iter().map(Task::min_time).sum()
    }

    /// Largest `min_time` over tasks: no schedule can beat it.
    pub fn max_min_time(&self) -> f64 {
        self.tasks.iter().map(Task::min_time).fold(0.0, f64::max)
    }

    /// True when every task is accelerated by the GPU (`p̄ⱼ ≤ pⱼ`) —
    /// the paper's "special instance", which holds for sequence
    /// comparison and lowers the 3/2 variant's complexity.
    pub fn all_accelerated(&self) -> bool {
        self.tasks.iter().all(|t| t.p_gpu <= t.p_cpu)
    }

    /// Task ids sorted by decreasing acceleration factor `pⱼ/p̄ⱼ` — the
    /// priority order of the greedy knapsack (§III: "the most prioritary
    /// tasks are those with the best relative processing times on
    /// GPUs"). Ties break by id for determinism.
    pub fn ids_by_acceleration_desc(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.tasks.len()).collect();
        order.sort_by(|&a, &b| {
            let ra = self.tasks[a].acceleration();
            let rb = self.tasks[b].acceleration();
            rb.partial_cmp(&ra)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }

    /// Fetch a task by id (ids are dense indices).
    pub fn get(&self, id: usize) -> Option<&Task> {
        self.tasks.get(id)
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceleration_and_min_time() {
        let t = Task::new(0, 10.0, 2.0);
        assert!((t.acceleration() - 5.0).abs() < 1e-12);
        assert_eq!(t.min_time(), 2.0);
        let slow_gpu = Task::new(1, 1.0, 4.0);
        assert!((slow_gpu.acceleration() - 0.25).abs() < 1e-12);
        assert_eq!(slow_gpu.min_time(), 1.0);
    }

    #[test]
    #[should_panic]
    fn zero_cpu_time_panics() {
        let _ = Task::new(0, 0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn nan_gpu_time_panics() {
        let _ = Task::new(0, 1.0, f64::NAN);
    }

    #[test]
    fn areas_and_bounds() {
        let set = TaskSet::from_times(&[(10.0, 2.0), (6.0, 3.0), (4.0, 8.0)]);
        assert_eq!(set.len(), 3);
        assert!((set.total_cpu_area() - 20.0).abs() < 1e-12);
        assert!((set.total_gpu_area() - 13.0).abs() < 1e-12);
        assert!((set.total_min_area() - (2.0 + 3.0 + 4.0)).abs() < 1e-12);
        assert_eq!(set.max_min_time(), 4.0);
        assert!(!set.all_accelerated());
    }

    #[test]
    fn all_accelerated_detection() {
        let set = TaskSet::from_times(&[(10.0, 2.0), (6.0, 6.0)]);
        assert!(set.all_accelerated());
    }

    #[test]
    fn acceleration_order_is_descending_with_stable_ties() {
        let set = TaskSet::from_times(&[
            (4.0, 4.0),  // ratio 1.0
            (10.0, 2.0), // ratio 5.0
            (6.0, 3.0),  // ratio 2.0
            (8.0, 8.0),  // ratio 1.0 (ties with task 0 -> id order)
        ]);
        assert_eq!(set.ids_by_acceleration_desc(), vec![1, 2, 0, 3]);
    }

    #[test]
    fn empty_set_behaviour() {
        let set = TaskSet::default();
        assert!(set.is_empty());
        assert_eq!(set.total_cpu_area(), 0.0);
        assert_eq!(set.max_min_time(), 0.0);
        assert!(set.all_accelerated());
        assert!(set.ids_by_acceleration_desc().is_empty());
    }
}
