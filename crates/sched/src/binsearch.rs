//! Binary search over the guess λ (paper §III, *Binary Search*).
//!
//! Start from a lower bound `B_min` and an upper bound `B_max` on the
//! optimal makespan, repeatedly run the dual step at the midpoint:
//! a NO answer raises the lower bound, a schedule lowers the upper
//! bound. The number of iterations is bounded by
//! `log((B_max − B_min)/precision)`; with the 2-dual step the final
//! schedule's makespan is at most `2·(OPT + precision)`.

use crate::dual::{dual_step_observed, DualStepResult, KnapsackMethod};
use crate::platform::PlatformSpec;
use crate::schedule::Schedule;
use crate::task::TaskSet;
use swdual_obs::{Obs, Track};

/// Binary-search tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BinarySearchConfig {
    /// Knapsack used inside every dual step.
    pub method: KnapsackMethod,
    /// Stop when `hi - lo <= relative_precision * hi`.
    pub relative_precision: f64,
    /// Hard cap on iterations (the bound `log(B_max − B_min)` of the
    /// paper, with slack).
    pub max_iterations: usize,
}

impl Default for BinarySearchConfig {
    fn default() -> Self {
        BinarySearchConfig {
            method: KnapsackMethod::Greedy,
            relative_precision: 1e-4,
            max_iterations: 64,
        }
    }
}

/// Outcome of the full dual-approximation scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct BinarySearchOutcome {
    /// The best (smallest-makespan) schedule found.
    pub schedule: Schedule,
    /// Final lower bound on the optimal makespan (largest λ that
    /// answered NO, or the initial bound).
    pub lower_bound: f64,
    /// Final upper bound guess (smallest λ that produced a schedule).
    pub upper_bound: f64,
    /// Dual steps executed.
    pub iterations: usize,
}

impl BinarySearchOutcome {
    /// Ratio of the found makespan to the proven lower bound — an upper
    /// bound on the distance from optimal. Returns 1.0 for trivial
    /// (empty) instances.
    pub fn approximation_ratio(&self) -> f64 {
        if self.lower_bound <= 0.0 {
            1.0
        } else {
            self.schedule.makespan() / self.lower_bound
        }
    }
}

/// Lower bound `B_min` on the optimal makespan: every task needs its
/// fastest PE time, and the total optimistic area must fit on `m + k`
/// PEs.
pub fn lower_bound(tasks: &TaskSet, platform: &PlatformSpec) -> f64 {
    if tasks.is_empty() {
        return 0.0;
    }
    let total = platform.total().max(1) as f64;
    // When one side is absent, the per-task minimum must use the other
    // side's time.
    let per_task = tasks
        .iter()
        .map(|t| match (platform.cpus, platform.gpus) {
            (0, _) => t.p_gpu,
            (_, 0) => t.p_cpu,
            _ => t.min_time(),
        })
        .fold(0.0, f64::max);
    let area = tasks
        .iter()
        .map(|t| match (platform.cpus, platform.gpus) {
            (0, _) => t.p_gpu,
            (_, 0) => t.p_cpu,
            _ => t.min_time(),
        })
        .sum::<f64>()
        / total;
    per_task.max(area)
}

/// Upper bound `B_max`: a trivially feasible makespan (all work placed
/// serially on the side that can host it).
pub fn upper_bound(tasks: &TaskSet, platform: &PlatformSpec) -> f64 {
    if tasks.is_empty() {
        return 0.0;
    }
    match (platform.cpus, platform.gpus) {
        (0, 0) => panic!("platform has no processing elements"),
        (0, _) => tasks.total_gpu_area(),
        (_, 0) => tasks.total_cpu_area(),
        _ => tasks.total_gpu_area().min(tasks.total_cpu_area()),
    }
}

/// The complete SWDUAL scheduling algorithm: binary search over λ with
/// the dual step as oracle.
///
/// ```
/// use swdual_sched::{dual_approx_schedule, BinarySearchConfig, PlatformSpec, TaskSet};
///
/// // Four tasks, strongly accelerated on the GPU.
/// let tasks = TaskSet::from_times(&[(8.0, 2.0), (8.0, 2.0), (4.0, 2.0), (2.0, 2.0)]);
/// let platform = PlatformSpec::new(1, 1); // 1 CPU + 1 GPU
/// let out = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
/// assert!(out.schedule.validate(&tasks, &platform).is_ok());
/// // Guaranteed within a factor 2 of the proven lower bound.
/// assert!(out.approximation_ratio() <= 2.0);
/// ```
///
/// # Panics
/// Panics if the platform has no PEs while tasks exist.
pub fn dual_approx_schedule(
    tasks: &TaskSet,
    platform: &PlatformSpec,
    config: BinarySearchConfig,
) -> BinarySearchOutcome {
    dual_approx_schedule_observed(tasks, platform, config, &Obs::disabled())
}

/// [`dual_approx_schedule`] with every binary-search iteration recorded
/// on the scheduler track of `obs`: one wall-clock span per dual step
/// annotated with the probed λ, the bracketing interval and the
/// feasibility answer, plus a closing instant with the final bounds.
/// Scheduler events carry decision id 0 (the initial plan); re-planners
/// use [`dual_approx_schedule_observed_decision`].
pub fn dual_approx_schedule_observed(
    tasks: &TaskSet,
    platform: &PlatformSpec,
    config: BinarySearchConfig,
    obs: &Obs,
) -> BinarySearchOutcome {
    dual_approx_schedule_observed_decision(tasks, platform, config, obs, 0)
}

/// [`dual_approx_schedule_observed`] tagged with the plan decision that
/// requested this search: every `dual_step` span and the closing
/// `binsearch_done` instant carry a `decision` arg, tying scheduler
/// work into the journal's causal lineage (0 = initial plan, each
/// re-plan counts up).
pub fn dual_approx_schedule_observed_decision(
    tasks: &TaskSet,
    platform: &PlatformSpec,
    config: BinarySearchConfig,
    obs: &Obs,
    decision: u64,
) -> BinarySearchOutcome {
    if tasks.is_empty() {
        return BinarySearchOutcome {
            schedule: Schedule::default(),
            lower_bound: 0.0,
            upper_bound: 0.0,
            iterations: 0,
        };
    }
    let mut lo = lower_bound(tasks, platform);
    let mut hi = upper_bound(tasks, platform);
    debug_assert!(hi >= lo * 0.999_999);

    // The upper bound must produce a schedule; keep it as the fallback.
    let start = obs.now();
    let mut best = dual_step_observed(tasks, platform, hi, config.method, obs)
        .schedule()
        .expect("dual step must succeed at the trivial upper bound");
    obs.span(
        Track::Scheduler,
        "dual_step",
        start,
        obs.now() - start,
        None,
        &[
            ("iteration", 0.0),
            ("lambda", hi),
            ("feasible", 1.0),
            ("decision", decision as f64),
        ],
    );
    let mut iterations = 1;

    while iterations < config.max_iterations
        && (hi - lo) > config.relative_precision * hi.max(f64::MIN_POSITIVE)
    {
        let mid = 0.5 * (lo + hi);
        let start = obs.now();
        let result = dual_step_observed(tasks, platform, mid, config.method, obs);
        let feasible = !result.is_no();
        obs.span(
            Track::Scheduler,
            "dual_step",
            start,
            obs.now() - start,
            None,
            &[
                ("iteration", iterations as f64),
                ("lambda", mid),
                ("lo", lo),
                ("hi", hi),
                ("feasible", if feasible { 1.0 } else { 0.0 }),
                ("decision", decision as f64),
            ],
        );
        iterations += 1;
        match result {
            DualStepResult::Schedule(s) => {
                if s.makespan() < best.makespan() {
                    best = s;
                }
                hi = mid;
            }
            DualStepResult::No(_) => {
                lo = mid;
            }
        }
    }

    // `lambda` is the smallest feasible guess the search settled on;
    // the dual step guarantees the returned schedule's makespan is at
    // most `2·lambda`. Journaled so the post-run auditor can check the
    // achieved makespan against the bound.
    obs.instant(
        Track::Scheduler,
        "binsearch_done",
        &[
            ("iterations", iterations as f64),
            ("lower_bound", lo),
            ("upper_bound", hi),
            ("makespan", best.makespan()),
            ("lambda", hi),
            ("two_lambda_bound", 2.0 * hi),
            ("decision", decision as f64),
        ],
    );
    obs.counter("sched_binsearch_iterations", iterations as f64);

    BinarySearchOutcome {
        schedule: best,
        lower_bound: lo,
        upper_bound: hi,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knapsack::DpConfig;

    fn random_instance(n: usize, seed: u64) -> TaskSet {
        // Deterministic LCG so unit tests need no rand dependency.
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        let times: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                let gpu = 0.5 + 4.0 * next();
                let accel = 1.0 + 9.0 * next();
                (gpu * accel, gpu)
            })
            .collect();
        TaskSet::from_times(&times)
    }

    #[test]
    fn empty_instance() {
        let out = dual_approx_schedule(
            &TaskSet::default(),
            &PlatformSpec::new(2, 2),
            BinarySearchConfig::default(),
        );
        assert_eq!(out.schedule.makespan(), 0.0);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn bounds_bracket_the_optimum() {
        let tasks = TaskSet::from_times(&[(4.0, 1.0), (4.0, 1.0), (4.0, 1.0), (4.0, 1.0)]);
        let platform = PlatformSpec::new(2, 2);
        let lo = lower_bound(&tasks, &platform);
        let hi = upper_bound(&tasks, &platform);
        // OPT here: 2 tasks on each GPU = 2.0 (CPU would take 4+).
        assert!(lo <= 2.0 + 1e-12);
        assert!(hi >= 2.0);
    }

    #[test]
    fn two_approximation_guarantee_holds() {
        let platform = PlatformSpec::new(4, 2);
        for seed in 1..20u64 {
            let tasks = random_instance(30, seed);
            let out = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
            out.schedule.validate(&tasks, &platform).unwrap();
            // Makespan within 2x the proven lower bound (the theoretical
            // guarantee is 2·OPT >= 2·lower_bound... here we check the
            // usable form: C_max <= 2 * final upper bound guess).
            assert!(
                out.schedule.makespan() <= 2.0 * out.upper_bound + 1e-6,
                "seed {seed}: {} > 2 * {}",
                out.schedule.makespan(),
                out.upper_bound
            );
            // And OPT cannot be below the lower bound.
            assert!(out.lower_bound <= out.upper_bound + 1e-9);
        }
    }

    #[test]
    fn ratio_to_lower_bound_is_reasonable() {
        // Empirically the dual-approx + LPT combination lands well under
        // its worst-case factor on random instances.
        let platform = PlatformSpec::new(4, 4);
        let mut worst: f64 = 0.0;
        for seed in 1..15u64 {
            let tasks = random_instance(40, seed);
            let out = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
            worst = worst.max(out.approximation_ratio());
        }
        assert!(worst <= 2.0 + 1e-9, "worst ratio {worst}");
    }

    #[test]
    fn iterations_respect_log_bound() {
        let tasks = random_instance(25, 7);
        let platform = PlatformSpec::new(2, 2);
        let config = BinarySearchConfig {
            relative_precision: 1e-3,
            ..BinarySearchConfig::default()
        };
        let out = dual_approx_schedule(&tasks, &platform, config);
        // log2(1/1e-3) ≈ 10; generous headroom for the interval width.
        assert!(out.iterations <= 40, "{} iterations", out.iterations);
    }

    #[test]
    fn single_task_goes_to_its_faster_pe() {
        let tasks = TaskSet::from_times(&[(10.0, 2.0)]);
        let platform = PlatformSpec::new(1, 1);
        let out = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
        assert!((out.schedule.makespan() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn dp_method_not_worse_than_greedy_on_average() {
        let platform = PlatformSpec::new(3, 2);
        let mut greedy_total = 0.0;
        let mut dp_total = 0.0;
        for seed in 1..10u64 {
            let tasks = random_instance(24, seed);
            let g = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
            let d = dual_approx_schedule(
                &tasks,
                &platform,
                BinarySearchConfig {
                    method: KnapsackMethod::Dp(DpConfig::default()),
                    ..BinarySearchConfig::default()
                },
            );
            d.schedule.validate(&tasks, &platform).unwrap();
            greedy_total += g.schedule.makespan();
            dp_total += d.schedule.makespan();
        }
        // DP refines the packing; allow a small tolerance for grid
        // rounding but it must not be systematically worse.
        assert!(
            dp_total <= greedy_total * 1.05,
            "dp {dp_total} vs greedy {greedy_total}"
        );
    }

    #[test]
    fn heavily_heterogeneous_instance() {
        // Mix of strongly accelerated and GPU-averse tasks: the paper's
        // heterogeneous query-set scenario (§V-C).
        let tasks = TaskSet::from_times(&[
            (100.0, 5.0),
            (80.0, 4.0),
            (1.0, 0.9),
            (1.0, 0.9),
            (50.0, 10.0),
            (0.5, 0.49),
            (200.0, 8.0),
            (2.0, 1.9),
        ]);
        let platform = PlatformSpec::new(2, 2);
        let out = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
        out.schedule.validate(&tasks, &platform).unwrap();
        assert!(out.approximation_ratio() <= 2.0 + 1e-9);
        // The monster tasks must be on GPUs.
        let a = out.schedule.assignment(tasks.len());
        assert_eq!(a.kind_of(6), crate::schedule::PeKind::Gpu);
    }
}
