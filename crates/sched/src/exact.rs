//! Exact optimal scheduler for small instances (branch and bound).
//!
//! `R|pⱼ∈{pⱼ,p̄ⱼ}|C_max` is NP-hard, so this solver is exponential and
//! only meant for instances of a dozen-odd tasks. Its purpose is
//! verification: the dual-approximation's `2·OPT` (and the DP variant's
//! `3/2·OPT`) guarantees are stated against the *true* optimum, and the
//! property tests use this solver to check them — something the paper
//! could only argue on paper.

use crate::platform::PlatformSpec;
use crate::schedule::{PeId, PeKind, Placement, Schedule};
use crate::task::TaskSet;

/// Hard cap on instance size; beyond it the search space explodes.
pub const MAX_EXACT_TASKS: usize = 14;

/// Compute an optimal schedule by depth-first branch and bound.
///
/// Returns `None` when the instance exceeds [`MAX_EXACT_TASKS`] or the
/// platform has no PEs for a nonempty instance.
pub fn optimal_schedule(tasks: &TaskSet, platform: &PlatformSpec) -> Option<Schedule> {
    if tasks.len() > MAX_EXACT_TASKS {
        return None;
    }
    if tasks.is_empty() {
        return Some(Schedule::default());
    }
    let machines: Vec<PeId> = (0..platform.cpus)
        .map(PeId::cpu)
        .chain((0..platform.gpus).map(PeId::gpu))
        .collect();
    if machines.is_empty() {
        return None;
    }

    // Order tasks by decreasing best-case duration: big decisions first
    // makes the bound bite early.
    let mut order: Vec<usize> = (0..tasks.len()).collect();
    order.sort_by(|&a, &b| {
        let ta = tasks.tasks()[a].min_time();
        let tb = tasks.tasks()[b].min_time();
        tb.partial_cmp(&ta).unwrap()
    });

    // Seed the upper bound with a greedy earliest-finish assignment.
    let mut seed_loads = vec![0.0f64; machines.len()];
    let mut seed_assign = vec![0usize; tasks.len()];
    for &tid in &order {
        let t = &tasks.tasks()[tid];
        let (slot, finish) = machines
            .iter()
            .enumerate()
            .map(|(slot, pe)| {
                let dur = match pe.kind {
                    PeKind::Cpu => t.p_cpu,
                    PeKind::Gpu => t.p_gpu,
                };
                (slot, seed_loads[slot] + dur)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        seed_loads[slot] = finish;
        seed_assign[tid] = slot;
    }
    let best_makespan = seed_loads.iter().cloned().fold(0.0, f64::max);
    let mut best_assign = seed_assign;

    // Remaining optimistic work (sum of min times) for the area bound.
    let mut suffix_min: Vec<f64> = vec![0.0; order.len() + 1];
    for i in (0..order.len()).rev() {
        suffix_min[i] = suffix_min[i + 1] + tasks.tasks()[order[i]].min_time();
    }

    struct Dfs<'a> {
        tasks: &'a TaskSet,
        machines: &'a [PeId],
        order: &'a [usize],
        suffix_min: &'a [f64],
        loads: Vec<f64>,
        assign: Vec<usize>,
        best_makespan: f64,
        best_assign: Vec<usize>,
    }

    impl Dfs<'_> {
        fn run(&mut self, depth: usize) {
            if depth == self.order.len() {
                let ms = self.loads.iter().cloned().fold(0.0, f64::max);
                if ms < self.best_makespan {
                    self.best_makespan = ms;
                    self.best_assign = self.assign.clone();
                }
                return;
            }
            // Area bound: remaining optimistic work spread perfectly.
            let current_max = self.loads.iter().cloned().fold(0.0, f64::max);
            let total_load: f64 = self.loads.iter().sum();
            let area_bound = (total_load + self.suffix_min[depth]) / self.machines.len() as f64;
            if current_max.max(area_bound) >= self.best_makespan - 1e-12 {
                return;
            }

            let tid = self.order[depth];
            let task = self.tasks.tasks()[tid];
            // Symmetry breaking: among machines of equal kind with equal
            // load, try only the first.
            let mut tried: Vec<(PeKind, u64)> = Vec::new();
            for slot in 0..self.machines.len() {
                let kind = self.machines[slot].kind;
                let key = (kind, self.loads[slot].to_bits());
                if tried.contains(&key) {
                    continue;
                }
                tried.push(key);
                let dur = match kind {
                    PeKind::Cpu => task.p_cpu,
                    PeKind::Gpu => task.p_gpu,
                };
                if self.loads[slot] + dur >= self.best_makespan - 1e-12 {
                    continue;
                }
                self.loads[slot] += dur;
                self.assign[tid] = slot;
                self.run(depth + 1);
                self.loads[slot] -= dur;
            }
        }
    }

    let mut dfs = Dfs {
        tasks,
        machines: &machines,
        order: &order,
        suffix_min: &suffix_min,
        loads: vec![0.0; machines.len()],
        assign: vec![0; tasks.len()],
        best_makespan,
        best_assign: best_assign.clone(),
    };
    dfs.run(0);
    best_assign = dfs.best_assign;

    // Materialise the winning assignment as a schedule.
    let mut loads = vec![0.0f64; machines.len()];
    let mut placements = Vec::with_capacity(tasks.len());
    for (tid, &slot) in best_assign.iter().enumerate() {
        let pe = machines[slot];
        let dur = match pe.kind {
            PeKind::Cpu => tasks.tasks()[tid].p_cpu,
            PeKind::Gpu => tasks.tasks()[tid].p_gpu,
        };
        placements.push(Placement {
            task: tid,
            pe,
            start: loads[slot],
            end: loads[slot] + dur,
        });
        loads[slot] += dur;
    }
    Some(Schedule { placements })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binsearch::{dual_approx_schedule, BinarySearchConfig};

    #[test]
    fn trivial_instances() {
        let platform = PlatformSpec::new(1, 1);
        let sched = optimal_schedule(&TaskSet::default(), &platform).unwrap();
        assert_eq!(sched.makespan(), 0.0);

        let tasks = TaskSet::from_times(&[(5.0, 2.0)]);
        let sched = optimal_schedule(&tasks, &platform).unwrap();
        assert!((sched.makespan() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn hand_checkable_optimum() {
        // 4 identical tasks (4 on CPU, 2 on GPU), 1 CPU + 1 GPU.
        // OPT: put 1 on the CPU (4) and 3 on the GPU (6)? makespan 6;
        // or 2+2: CPU 8, GPU 4 -> 8. Best: 0 CPU... all 4 on GPU = 8.
        // 1 CPU/3 GPU = max(4, 6) = 6 is optimal.
        let tasks = TaskSet::from_times(&[(4.0, 2.0); 4]);
        let platform = PlatformSpec::new(1, 1);
        let sched = optimal_schedule(&tasks, &platform).unwrap();
        assert!((sched.makespan() - 6.0).abs() < 1e-12);
        sched.validate(&tasks, &platform).unwrap();
    }

    #[test]
    fn optimum_uses_the_slower_pe_when_it_helps() {
        // GPU-averse task: p_gpu huge.
        let tasks = TaskSet::from_times(&[(3.0, 100.0), (3.0, 1.0), (3.0, 1.0)]);
        let platform = PlatformSpec::new(1, 1);
        let sched = optimal_schedule(&tasks, &platform).unwrap();
        // Task 0 on CPU (3), tasks 1+2 on GPU (2): makespan 3.
        assert!((sched.makespan() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn too_large_instances_refused() {
        let tasks = TaskSet::from_times(&vec![(1.0, 1.0); MAX_EXACT_TASKS + 1]);
        assert!(optimal_schedule(&tasks, &PlatformSpec::new(2, 2)).is_none());
    }

    #[test]
    fn dual_approx_within_twice_the_true_optimum() {
        // The real guarantee check on random small instances.
        let mut state = 0xACEDu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        for trial in 0..30 {
            let n = 4 + (trial % 7);
            let times: Vec<(f64, f64)> = (0..n)
                .map(|_| {
                    let gpu = 0.5 + 4.0 * next();
                    let accel = 0.5 + 6.0 * next();
                    (gpu * accel, gpu)
                })
                .collect();
            let tasks = TaskSet::from_times(&times);
            let platform = PlatformSpec::new(1 + trial % 3, 1 + (trial / 3) % 3);
            let opt = optimal_schedule(&tasks, &platform).unwrap();
            opt.validate(&tasks, &platform).unwrap();
            let dual = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
            assert!(
                dual.schedule.makespan() <= 2.0 * opt.makespan() + 1e-9,
                "trial {trial}: dual {} > 2 x OPT {}",
                dual.schedule.makespan(),
                opt.makespan()
            );
            // And OPT is never below the proven lower bound.
            assert!(opt.makespan() >= dual.lower_bound - 1e-9);
        }
    }
}
