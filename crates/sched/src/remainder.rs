//! Re-planning the remainder of an interrupted run.
//!
//! When a worker dies mid-execution, the master is left with a subset
//! of the original tasks (the dead worker's orphans plus everything not
//! yet dispatched) and a *smaller* platform. Re-running the full
//! dual-approximation on that residual instance is exactly the paper's
//! allocator applied to a fresh problem — the 2-approximation guarantee
//! carries over to the recovery schedule.
//!
//! This module packages that re-planning step: re-index the surviving
//! tasks as a standalone instance (the binary search and knapsack
//! expect dense ids), schedule them on the reduced platform, and map
//! the placements back to the original task ids.

use crate::binsearch::{dual_approx_schedule, BinarySearchConfig};
use crate::platform::PlatformSpec;
use crate::schedule::{Placement, Schedule};
use crate::task::{Task, TaskSet};

/// Schedule the tasks in `remaining` (global ids into `tasks`) on
/// `platform` with the dual approximation. The returned schedule's
/// placements carry the *global* task ids; its clock starts at zero —
/// callers overlay it on their own notion of "now".
///
/// Duplicate ids in `remaining` are scheduled once (first occurrence
/// wins); ids out of range panic, as they indicate master-side
/// bookkeeping corruption rather than a recoverable fault.
pub fn reschedule_remainder(
    tasks: &TaskSet,
    remaining: &[usize],
    platform: &PlatformSpec,
    config: BinarySearchConfig,
) -> Schedule {
    let mut seen = vec![false; tasks.len()];
    let mut ids: Vec<usize> = Vec::with_capacity(remaining.len());
    for &gid in remaining {
        assert!(
            gid < tasks.len(),
            "remainder task id {gid} out of range (n={})",
            tasks.len()
        );
        if !seen[gid] {
            seen[gid] = true;
            ids.push(gid);
        }
    }
    if ids.is_empty() {
        return Schedule::default();
    }

    let residual = TaskSet::new(
        ids.iter()
            .enumerate()
            .map(|(local, &gid)| {
                let t = tasks.tasks()[gid];
                Task::new(local, t.p_cpu, t.p_gpu)
            })
            .collect(),
    );
    let outcome = dual_approx_schedule(&residual, platform, config);

    let placements = outcome
        .schedule
        .placements
        .into_iter()
        .map(|p| Placement {
            task: ids[p.task],
            pe: p.pe,
            start: p.start,
            end: p.end,
        })
        .collect();
    Schedule { placements }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::PeKind;

    fn instance(n: usize) -> TaskSet {
        TaskSet::from_times(
            &(0..n)
                .map(|i| {
                    let gpu = 0.5 + (i as f64) * 0.3;
                    (gpu * (2.0 + (i % 5) as f64), gpu)
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn full_remainder_matches_direct_schedule() {
        let tasks = instance(12);
        let platform = PlatformSpec::new(2, 2);
        let all: Vec<usize> = (0..12).collect();
        let re = reschedule_remainder(&tasks, &all, &platform, BinarySearchConfig::default());
        let direct = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
        re.validate(&tasks, &platform).unwrap();
        assert!((re.makespan() - direct.schedule.makespan()).abs() < 1e-9);
    }

    #[test]
    fn partial_remainder_places_each_survivor_exactly_once() {
        let tasks = instance(20);
        let platform = PlatformSpec::new(1, 1);
        let remaining = [3usize, 7, 11, 19, 4];
        let re = reschedule_remainder(&tasks, &remaining, &platform, BinarySearchConfig::default());
        let mut placed: Vec<usize> = re.placements.iter().map(|p| p.task).collect();
        placed.sort_unstable();
        let mut want = remaining.to_vec();
        want.sort_unstable();
        assert_eq!(placed, want);
    }

    #[test]
    fn duplicates_schedule_once() {
        let tasks = instance(6);
        let platform = PlatformSpec::new(1, 1);
        let re = reschedule_remainder(
            &tasks,
            &[2, 2, 5, 2, 5],
            &platform,
            BinarySearchConfig::default(),
        );
        let mut placed: Vec<usize> = re.placements.iter().map(|p| p.task).collect();
        placed.sort_unstable();
        assert_eq!(placed, vec![2, 5]);
    }

    #[test]
    fn empty_remainder_is_an_empty_schedule() {
        let tasks = instance(4);
        let platform = PlatformSpec::new(1, 1);
        let re = reschedule_remainder(&tasks, &[], &platform, BinarySearchConfig::default());
        assert!(re.placements.is_empty());
    }

    #[test]
    fn degraded_cpu_only_platform_still_schedules() {
        // All GPUs died: the residual platform has zero GPUs and every
        // orphan must land on a CPU.
        let tasks = instance(8);
        let platform = PlatformSpec::new(2, 0);
        let remaining: Vec<usize> = (0..8).collect();
        let re = reschedule_remainder(&tasks, &remaining, &platform, BinarySearchConfig::default());
        assert_eq!(re.placements.len(), 8);
        assert!(re.placements.iter().all(|p| p.pe.kind == PeKind::Cpu));
    }
}
