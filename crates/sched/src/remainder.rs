//! Re-planning the remainder of an interrupted run.
//!
//! When a worker dies mid-execution, the master is left with a subset
//! of the original tasks (the dead worker's orphans plus everything not
//! yet dispatched) and a *smaller* platform. Re-running the full
//! dual-approximation on that residual instance is exactly the paper's
//! allocator applied to a fresh problem — the 2-approximation guarantee
//! carries over to the recovery schedule.
//!
//! This module packages that re-planning step: re-index the surviving
//! tasks as a standalone instance (the binary search and knapsack
//! expect dense ids), schedule them on the reduced platform, and map
//! the placements back to the original task ids.

use crate::binsearch::{dual_approx_schedule, BinarySearchConfig};
use crate::platform::PlatformSpec;
use crate::schedule::{PeId, PeKind, Placement, Schedule};
use crate::task::{Task, TaskSet};

/// Schedule the tasks in `remaining` (global ids into `tasks`) on
/// `platform` with the dual approximation. The returned schedule's
/// placements carry the *global* task ids; its clock starts at zero —
/// callers overlay it on their own notion of "now".
///
/// Duplicate ids in `remaining` are scheduled once (first occurrence
/// wins); ids out of range panic, as they indicate master-side
/// bookkeeping corruption rather than a recoverable fault.
pub fn reschedule_remainder(
    tasks: &TaskSet,
    remaining: &[usize],
    platform: &PlatformSpec,
    config: BinarySearchConfig,
) -> Schedule {
    let mut seen = vec![false; tasks.len()];
    let mut ids: Vec<usize> = Vec::with_capacity(remaining.len());
    for &gid in remaining {
        assert!(
            gid < tasks.len(),
            "remainder task id {gid} out of range (n={})",
            tasks.len()
        );
        if !seen[gid] {
            seen[gid] = true;
            ids.push(gid);
        }
    }
    if ids.is_empty() {
        return Schedule::default();
    }

    let residual = TaskSet::new(
        ids.iter()
            .enumerate()
            .map(|(local, &gid)| {
                let t = tasks.tasks()[gid];
                Task::new(local, t.p_cpu, t.p_gpu)
            })
            .collect(),
    );
    let outcome = dual_approx_schedule(&residual, platform, config);

    let placements = outcome
        .schedule
        .placements
        .into_iter()
        .map(|p| Placement {
            task: ids[p.task],
            pe: p.pe,
            start: p.start,
            end: p.end,
        })
        .collect();
    Schedule { placements }
}

/// Per-PE slowdown factors observed at runtime, used to re-plan on a
/// *re-calibrated* platform: `cpu[i]` (resp. `gpu[i]`) multiplies every
/// task time on that PE. `1.0` is "running exactly as modelled";
/// a straggler observed at 3× its estimates carries `3.0`. Factors are
/// clamped to ≥ 1 on construction — re-calibration only ever makes a
/// worker look slower than its prior, never faster, so the conservative
/// deadline floors of the fault detector stay valid.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerFactors {
    /// Slowdown per CPU PE (index-aligned with the platform's CPUs).
    pub cpu: Vec<f64>,
    /// Slowdown per GPU PE.
    pub gpu: Vec<f64>,
}

impl WorkerFactors {
    /// Build from raw observed factors, sanitising each to `max(f, 1)`
    /// (non-finite observations degrade to 1.0 — no data, honest prior).
    pub fn new(cpu: Vec<f64>, gpu: Vec<f64>) -> WorkerFactors {
        let sane = |v: Vec<f64>| {
            v.into_iter()
                .map(|f| if f.is_finite() { f.max(1.0) } else { 1.0 })
                .collect()
        };
        WorkerFactors {
            cpu: sane(cpu),
            gpu: sane(gpu),
        }
    }

    /// The uniform no-skew calibration for a platform of `m` CPUs and
    /// `k` GPUs.
    pub fn uniform(m: usize, k: usize) -> WorkerFactors {
        WorkerFactors {
            cpu: vec![1.0; m],
            gpu: vec![1.0; k],
        }
    }

    /// The implied platform shape.
    pub fn platform(&self) -> PlatformSpec {
        PlatformSpec::new(self.cpu.len(), self.gpu.len())
    }

    /// Largest skew between two same-species PEs — the quantity the
    /// re-optimization threshold is compared against.
    pub fn max_skew(&self) -> f64 {
        let species_skew = |v: &[f64]| {
            let max = v.iter().copied().fold(f64::NAN, f64::max);
            let min = v.iter().copied().fold(f64::NAN, f64::min);
            if max.is_finite() && min > 0.0 {
                max / min
            } else {
                1.0
            }
        };
        species_skew(&self.cpu).max(species_skew(&self.gpu))
    }
}

/// Re-plan `remaining` on a platform whose PEs run at *observed*
/// per-worker speeds instead of the uniform prior.
///
/// The species split (which tasks go to CPUs vs GPUs) reuses the
/// dual-approximation on the residual instance with each species priced
/// at its *fastest* observed member — the knapsack's acceleration-ratio
/// logic is species-level and per-worker skew within a species does not
/// change the ratios. Within each species, tasks are then re-balanced
/// by weighted LPT: longest task first onto the PE whose observed
/// finish time (`load + p·factor`) is smallest. With uniform factors
/// this degrades to plain LPT — the same family of schedules the
/// unweighted path produces.
///
/// Placement `start`/`end` are stated in observed (re-calibrated) time.
/// Duplicate ids schedule once; out-of-range ids panic, as in
/// [`reschedule_remainder`].
pub fn reschedule_remainder_weighted(
    tasks: &TaskSet,
    remaining: &[usize],
    factors: &WorkerFactors,
    config: BinarySearchConfig,
) -> Schedule {
    let platform = factors.platform();
    // Species split on the fastest-member calibration.
    let split = reschedule_remainder(tasks, remaining, &platform, config);
    if split.placements.is_empty() {
        return split;
    }

    // Gather each species' tasks as (global id, base time).
    let mut cpu_tasks: Vec<(usize, f64)> = Vec::new();
    let mut gpu_tasks: Vec<(usize, f64)> = Vec::new();
    for p in &split.placements {
        let t = tasks.tasks()[p.task];
        match p.pe.kind {
            PeKind::Cpu => cpu_tasks.push((p.task, t.p_cpu)),
            PeKind::Gpu => gpu_tasks.push((p.task, t.p_gpu)),
        }
    }

    let mut placements: Vec<Placement> = Vec::with_capacity(split.placements.len());
    for (mut species_tasks, species_factors, mk_pe) in [
        (cpu_tasks, &factors.cpu, PeId::cpu as fn(usize) -> PeId),
        (gpu_tasks, &factors.gpu, PeId::gpu as fn(usize) -> PeId),
    ] {
        if species_tasks.is_empty() {
            continue;
        }
        assert!(
            !species_factors.is_empty(),
            "species has tasks but zero workers"
        );
        // Weighted LPT: longest base time first, ties by id for
        // determinism.
        species_tasks.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut loads = vec![0.0f64; species_factors.len()];
        for (gid, base) in species_tasks {
            let mut best = 0usize;
            let mut best_finish = f64::INFINITY;
            for (i, &load) in loads.iter().enumerate() {
                let finish = load + base * species_factors[i];
                if finish < best_finish - 1e-15 {
                    best = i;
                    best_finish = finish;
                }
            }
            let start = loads[best];
            loads[best] = best_finish;
            placements.push(Placement {
                task: gid,
                pe: mk_pe(best),
                start,
                end: best_finish,
            });
        }
    }
    Schedule { placements }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(n: usize) -> TaskSet {
        TaskSet::from_times(
            &(0..n)
                .map(|i| {
                    let gpu = 0.5 + (i as f64) * 0.3;
                    (gpu * (2.0 + (i % 5) as f64), gpu)
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn full_remainder_matches_direct_schedule() {
        let tasks = instance(12);
        let platform = PlatformSpec::new(2, 2);
        let all: Vec<usize> = (0..12).collect();
        let re = reschedule_remainder(&tasks, &all, &platform, BinarySearchConfig::default());
        let direct = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
        re.validate(&tasks, &platform).unwrap();
        assert!((re.makespan() - direct.schedule.makespan()).abs() < 1e-9);
    }

    #[test]
    fn partial_remainder_places_each_survivor_exactly_once() {
        let tasks = instance(20);
        let platform = PlatformSpec::new(1, 1);
        let remaining = [3usize, 7, 11, 19, 4];
        let re = reschedule_remainder(&tasks, &remaining, &platform, BinarySearchConfig::default());
        let mut placed: Vec<usize> = re.placements.iter().map(|p| p.task).collect();
        placed.sort_unstable();
        let mut want = remaining.to_vec();
        want.sort_unstable();
        assert_eq!(placed, want);
    }

    #[test]
    fn duplicates_schedule_once() {
        let tasks = instance(6);
        let platform = PlatformSpec::new(1, 1);
        let re = reschedule_remainder(
            &tasks,
            &[2, 2, 5, 2, 5],
            &platform,
            BinarySearchConfig::default(),
        );
        let mut placed: Vec<usize> = re.placements.iter().map(|p| p.task).collect();
        placed.sort_unstable();
        assert_eq!(placed, vec![2, 5]);
    }

    #[test]
    fn empty_remainder_is_an_empty_schedule() {
        let tasks = instance(4);
        let platform = PlatformSpec::new(1, 1);
        let re = reschedule_remainder(&tasks, &[], &platform, BinarySearchConfig::default());
        assert!(re.placements.is_empty());
    }

    #[test]
    fn weighted_uniform_places_everything_exactly_once() {
        let tasks = instance(15);
        let factors = WorkerFactors::uniform(2, 2);
        let remaining: Vec<usize> = (0..15).collect();
        let re = reschedule_remainder_weighted(
            &tasks,
            &remaining,
            &factors,
            BinarySearchConfig::default(),
        );
        let mut placed: Vec<usize> = re.placements.iter().map(|p| p.task).collect();
        placed.sort_unstable();
        assert_eq!(placed, remaining);
        re.validate(&tasks, &factors.platform()).unwrap();
    }

    #[test]
    fn weighted_straggler_carries_less_load() {
        // Two CPUs, one observed 4x slow: the weighted re-plan must
        // give the straggler strictly less base work than the healthy
        // worker (on this instance of 10 CPU-bound tasks).
        let tasks = TaskSet::from_times(&[(1.0, 10.0); 10]); // CPU-favoured
        let factors = WorkerFactors::new(vec![1.0, 4.0], vec![]);
        let remaining: Vec<usize> = (0..10).collect();
        let re = reschedule_remainder_weighted(
            &tasks,
            &remaining,
            &factors,
            BinarySearchConfig::default(),
        );
        assert_eq!(re.placements.len(), 10);
        let base_load = |idx: usize| -> f64 {
            re.placements
                .iter()
                .filter(|p| p.pe == PeId::cpu(idx))
                .map(|p| tasks.tasks()[p.task].p_cpu)
                .sum()
        };
        assert!(
            base_load(1) < base_load(0),
            "straggler load {} vs healthy {}",
            base_load(1),
            base_load(0)
        );
        // Observed spans never overlap per PE.
        for idx in 0..2 {
            let mut spans: Vec<(f64, f64)> = re
                .placements
                .iter()
                .filter(|p| p.pe == PeId::cpu(idx))
                .map(|p| (p.start, p.end))
                .collect();
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                assert!(w[0].1 <= w[1].0 + 1e-12);
            }
        }
    }

    #[test]
    fn weighted_exactly_once_across_repeated_replans() {
        // Simulate the master's loop: repeated re-plans over a
        // shrinking remainder (with duplicates thrown in) never place a
        // task twice within one plan, and the union over rounds covers
        // every task exactly as the remainders do.
        let tasks = instance(12);
        let factors = WorkerFactors::new(vec![1.0, 2.5], vec![1.3]);
        let rounds: Vec<Vec<usize>> = vec![
            (0..12).collect(),
            vec![4, 5, 6, 7, 8, 9, 10, 11, 4, 7],
            vec![9, 10, 11, 11],
        ];
        for remaining in rounds {
            let re = reschedule_remainder_weighted(
                &tasks,
                &remaining,
                &factors,
                BinarySearchConfig::default(),
            );
            let mut placed: Vec<usize> = re.placements.iter().map(|p| p.task).collect();
            placed.sort_unstable();
            let mut want = remaining.clone();
            want.sort_unstable();
            want.dedup();
            assert_eq!(placed, want);
        }
    }

    #[test]
    fn factors_sanitise_and_measure_skew() {
        let f = WorkerFactors::new(vec![0.2, f64::NAN, 3.0], vec![f64::INFINITY]);
        assert_eq!(f.cpu, vec![1.0, 1.0, 3.0]);
        assert_eq!(f.gpu, vec![1.0]);
        assert!((f.max_skew() - 3.0).abs() < 1e-12);
        assert_eq!(WorkerFactors::uniform(3, 2).max_skew(), 1.0);
        // Empty species contributes no skew.
        assert_eq!(WorkerFactors::new(vec![2.0], vec![]).max_skew(), 1.0);
    }

    #[test]
    fn degraded_cpu_only_platform_still_schedules() {
        // All GPUs died: the residual platform has zero GPUs and every
        // orphan must land on a CPU.
        let tasks = instance(8);
        let platform = PlatformSpec::new(2, 0);
        let remaining: Vec<usize> = (0..8).collect();
        let re = reschedule_remainder(&tasks, &remaining, &platform, BinarySearchConfig::default());
        assert_eq!(re.placements.len(), 8);
        assert!(re.placements.iter().all(|p| p.pe.kind == PeKind::Cpu));
    }
}
