//! SVG Gantt-chart rendering of schedules.
//!
//! The ASCII chart of [`crate::schedule::Schedule::gantt`] is handy in a
//! terminal; this module renders the same information as a standalone
//! SVG document (one row per PE, one rectangle per task, GPUs on top
//! like the paper's Figures 4–5 sketches) for reports and the examples.

use crate::platform::PlatformSpec;
use crate::schedule::{PeId, Schedule};

/// Geometry and styling knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvgOptions {
    /// Total drawing width in pixels (time axis).
    pub width: f64,
    /// Height of one PE row in pixels.
    pub row_height: f64,
    /// Left margin reserved for PE labels.
    pub label_width: f64,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            width: 800.0,
            row_height: 26.0,
            label_width: 64.0,
        }
    }
}

/// A small qualitative palette; task `t` gets `PALETTE[t % len]`.
const PALETTE: [&str; 10] = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f", "#edc948", "#b07aa1", "#ff9da7",
    "#9c755f", "#bab0ac",
];

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render `schedule` as a complete SVG document.
pub fn render_svg(schedule: &Schedule, platform: &PlatformSpec, options: SvgOptions) -> String {
    let cmax = schedule.makespan();
    let pes: Vec<PeId> = (0..platform.gpus)
        .map(PeId::gpu)
        .chain((0..platform.cpus).map(PeId::cpu))
        .collect();
    let height = options.row_height * pes.len() as f64 + 24.0;
    // Guard against degenerate geometry: keep at least one pixel of
    // plot area so rects never land left of the label gutter.
    let plot_width = (options.width - options.label_width).max(1.0);
    let scale = if cmax > 0.0 { plot_width / cmax } else { 0.0 };

    let mut svg = String::new();
    svg.push_str(&format!(
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" font-family="monospace" font-size="11">"##,
        options.width, height
    ));
    svg.push('\n');

    for (row, pe) in pes.iter().enumerate() {
        let y = row as f64 * options.row_height;
        // Row label and baseline.
        svg.push_str(&format!(
            r##"<text x="2" y="{:.1}">{}</text>"##,
            y + options.row_height * 0.65,
            xml_escape(&pe.to_string())
        ));
        svg.push('\n');
        svg.push_str(&format!(
            r##"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="#ddd"/>"##,
            options.label_width,
            y + options.row_height - 1.0,
            options.width,
            y + options.row_height - 1.0
        ));
        svg.push('\n');
        for p in schedule.placements.iter().filter(|p| p.pe == *pe) {
            let x = options.label_width + p.start * scale;
            let w = ((p.end - p.start) * scale).max(1.0);
            let color = PALETTE[p.task % PALETTE.len()];
            svg.push_str(&format!(
                r##"<rect x="{x:.1}" y="{:.1}" width="{w:.1}" height="{:.1}" fill="{color}" stroke="white" stroke-width="0.5"><title>task {} on {}: {:.3}..{:.3}</title></rect>"##,
                y + 2.0,
                options.row_height - 5.0,
                p.task,
                pe,
                p.start,
                p.end
            ));
            svg.push('\n');
            if w > 18.0 {
                svg.push_str(&format!(
                    r##"<text x="{:.1}" y="{:.1}" fill="white">{}</text>"##,
                    x + 3.0,
                    y + options.row_height * 0.65,
                    p.task
                ));
                svg.push('\n');
            }
        }
    }
    // Time axis caption.
    svg.push_str(&format!(
        r##"<text x="{:.1}" y="{:.1}" fill="#333">C_max = {:.3}</text>"##,
        options.label_width,
        options.row_height * pes.len() as f64 + 16.0,
        cmax
    ));
    svg.push_str("\n</svg>\n");
    svg
}

/// Render with default options.
pub fn render_svg_default(schedule: &Schedule, platform: &PlatformSpec) -> String {
    render_svg(schedule, platform, SvgOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binsearch::{dual_approx_schedule, BinarySearchConfig};
    use crate::task::TaskSet;

    fn demo() -> (Schedule, TaskSet, PlatformSpec) {
        let tasks = TaskSet::from_times(&[(6.0, 2.0), (4.0, 2.0), (2.0, 1.0), (3.0, 3.0)]);
        let platform = PlatformSpec::new(1, 2);
        let schedule =
            dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default()).schedule;
        (schedule, tasks, platform)
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let (schedule, tasks, platform) = demo();
        let svg = render_svg_default(&schedule, &platform);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect per task.
        assert_eq!(svg.matches("<rect").count(), tasks.len());
        // Every PE row is labelled.
        assert!(svg.contains("GPU0") && svg.contains("GPU1") && svg.contains("CPU0"));
        assert!(svg.contains("C_max"));
        // Balanced tags.
        assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    }

    #[test]
    fn rect_positions_scale_with_time() {
        let (schedule, _, platform) = demo();
        let narrow = render_svg(
            &schedule,
            &platform,
            SvgOptions {
                width: 400.0,
                ..SvgOptions::default()
            },
        );
        let wide = render_svg(
            &schedule,
            &platform,
            SvgOptions {
                width: 1600.0,
                ..SvgOptions::default()
            },
        );
        assert!(narrow.len() <= wide.len() + 64);
        assert!(narrow.contains(r##"width="400""##));
        assert!(wide.contains(r##"width="1600""##));
    }

    #[test]
    fn degenerate_width_is_clamped() {
        let (schedule, _, platform) = demo();
        let svg = render_svg(
            &schedule,
            &platform,
            SvgOptions {
                width: 10.0,
                label_width: 64.0,
                row_height: 20.0,
            },
        );
        // No rect may start left of the label gutter.
        for cap in svg.split("<rect x=\"").skip(1) {
            let x: f64 = cap.split('"').next().unwrap().parse().unwrap();
            assert!(x >= 64.0, "rect at x={x}");
        }
    }

    #[test]
    fn empty_schedule_renders() {
        let svg = render_svg_default(&Schedule::default(), &PlatformSpec::new(1, 1));
        assert!(svg.contains("C_max = 0.000"));
        assert_eq!(svg.matches("<rect").count(), 0);
    }

    #[test]
    fn labels_are_escaped() {
        assert_eq!(xml_escape("a<b>&c"), "a&lt;b&gt;&amp;c");
    }
}
