//! Multi-round allocation.
//!
//! Paper §IV: allocation "can be done only once at the beginning of the
//! execution or iteratively until all tasks are executed". SWDUAL uses
//! the one-round variant; this module implements the iterative one so
//! the choice can be evaluated: tasks are released in batches, each
//! batch is scheduled with the dual-approximation *on top of the
//! current machine loads*, and later batches can react to the imbalance
//! earlier ones left behind (at the price of lost lookahead).

use crate::binsearch::{dual_approx_schedule, BinarySearchConfig};
use crate::platform::PlatformSpec;
use crate::schedule::{PeId, Placement, Schedule};
use crate::task::{Task, TaskSet};

/// Schedule `tasks` in `rounds` batches (task order = id order, as a
/// master releasing work incrementally would see it). Each batch is
/// scheduled with the dual approximation as if machines started empty,
/// then its placements are appended after the current per-machine
/// loads.
pub fn multi_round_schedule(
    tasks: &TaskSet,
    platform: &PlatformSpec,
    rounds: usize,
    config: BinarySearchConfig,
) -> Schedule {
    assert!(rounds >= 1, "at least one round");
    if tasks.is_empty() {
        return Schedule::default();
    }
    let n = tasks.len();
    let per_round = n.div_ceil(rounds);
    let mut loads: std::collections::HashMap<PeId, f64> = std::collections::HashMap::new();
    let mut placements: Vec<Placement> = Vec::with_capacity(n);

    for chunk_ids in (0..n).collect::<Vec<_>>().chunks(per_round) {
        // Re-index the chunk as a standalone instance.
        let chunk_tasks = TaskSet::new(
            chunk_ids
                .iter()
                .enumerate()
                .map(|(local, &gid)| {
                    let t = tasks.tasks()[gid];
                    Task::new(local, t.p_cpu, t.p_gpu)
                })
                .collect(),
        );
        let outcome = dual_approx_schedule(&chunk_tasks, platform, config);

        // Append each machine's batch placements after its current load,
        // preserving the batch-internal order.
        let mut batch = outcome.schedule.placements;
        batch.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        for p in batch {
            let offset = loads.entry(p.pe).or_insert(0.0);
            let gid = chunk_ids[p.task];
            let dur = p.end - p.start;
            placements.push(Placement {
                task: gid,
                pe: p.pe,
                start: *offset,
                end: *offset + dur,
            });
            *offset += dur;
        }
    }
    Schedule { placements }
}

/// Convenience: compare one-round vs `rounds`-round makespans on the
/// same instance. Returns `(one_round, multi_round)`.
pub fn one_vs_multi(tasks: &TaskSet, platform: &PlatformSpec, rounds: usize) -> (f64, f64) {
    let one = dual_approx_schedule(tasks, platform, BinarySearchConfig::default())
        .schedule
        .makespan();
    let multi =
        multi_round_schedule(tasks, platform, rounds, BinarySearchConfig::default()).makespan();
    (one, multi)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_instance(n: usize, seed: u64) -> TaskSet {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        TaskSet::from_times(
            &(0..n)
                .map(|_| {
                    let gpu = 0.5 + 4.0 * next();
                    let accel = 1.0 + 6.0 * next();
                    (gpu * accel, gpu)
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn one_round_is_a_special_case() {
        let tasks = random_instance(20, 3);
        let platform = PlatformSpec::new(2, 2);
        let single = multi_round_schedule(&tasks, &platform, 1, BinarySearchConfig::default());
        let direct = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
        single.validate(&tasks, &platform).unwrap();
        assert!((single.makespan() - direct.schedule.makespan()).abs() < 1e-9);
    }

    #[test]
    fn all_round_counts_produce_valid_schedules() {
        let tasks = random_instance(24, 7);
        let platform = PlatformSpec::new(3, 2);
        for rounds in [1usize, 2, 3, 6, 24, 50] {
            let s = multi_round_schedule(&tasks, &platform, rounds, BinarySearchConfig::default());
            s.validate(&tasks, &platform)
                .unwrap_or_else(|e| panic!("rounds={rounds}: {e}"));
            assert_eq!(s.placements.len(), 24);
        }
    }

    #[test]
    fn more_rounds_generally_cost_makespan() {
        // Losing lookahead cannot systematically help; over several
        // seeds the one-round variant wins on average — the empirical
        // backing for the paper's one-round design choice.
        let platform = PlatformSpec::new(2, 2);
        let mut one_total = 0.0;
        let mut many_total = 0.0;
        for seed in 1..12u64 {
            let tasks = random_instance(30, seed);
            let (one, many) = one_vs_multi(&tasks, &platform, 6);
            one_total += one;
            many_total += many;
        }
        assert!(
            one_total <= many_total * 1.001,
            "one-round {one_total} vs multi-round {many_total}"
        );
    }

    #[test]
    fn empty_and_single_task() {
        let platform = PlatformSpec::new(1, 1);
        let s = multi_round_schedule(
            &TaskSet::default(),
            &platform,
            3,
            BinarySearchConfig::default(),
        );
        assert!(s.placements.is_empty());
        let tasks = TaskSet::from_times(&[(4.0, 1.0)]);
        let s = multi_round_schedule(&tasks, &platform, 3, BinarySearchConfig::default());
        assert!((s.makespan() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_rounds_panics() {
        let tasks = TaskSet::from_times(&[(1.0, 1.0)]);
        let _ = multi_round_schedule(
            &tasks,
            &PlatformSpec::new(1, 1),
            0,
            BinarySearchConfig::default(),
        );
    }
}
