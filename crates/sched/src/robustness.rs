//! Robustness of static schedules to estimation error.
//!
//! SWDUAL's one-round allocation trusts the master's *estimates* of
//! `pⱼ` and `p̄ⱼ`. Real processing times deviate (cache effects, host
//! contention feeding the GPUs, database skew), and a static schedule
//! cannot react. This module replays a schedule under perturbed task
//! times — each worker executes its assigned tasks in the planned
//! order, but every task takes its *actual* duration — and reports the
//! realised makespan. Dynamic policies (self-scheduling) are replayed
//! under the same perturbation for comparison, which quantifies the
//! static-vs-dynamic trade-off the paper's §IV one-round choice makes.

use crate::platform::PlatformSpec;
use crate::schedule::{PeId, PeKind, Placement, Schedule};
use crate::task::TaskSet;

/// Actual (perturbed) processing times, indexed by task id.
#[derive(Debug, Clone, PartialEq)]
pub struct ActualTimes {
    /// Actual CPU time per task.
    pub p_cpu: Vec<f64>,
    /// Actual GPU time per task.
    pub p_gpu: Vec<f64>,
}

impl ActualTimes {
    /// The estimates themselves (no perturbation).
    pub fn exact(tasks: &TaskSet) -> ActualTimes {
        ActualTimes {
            p_cpu: tasks.iter().map(|t| t.p_cpu).collect(),
            p_gpu: tasks.iter().map(|t| t.p_gpu).collect(),
        }
    }

    /// Multiplicative noise: task `j`'s times are scaled by
    /// deterministic pseudo-random factors in `[1-amplitude, 1+amplitude]`.
    pub fn with_noise(tasks: &TaskSet, amplitude: f64, seed: u64) -> ActualTimes {
        assert!((0.0..1.0).contains(&amplitude), "amplitude in [0,1)");
        let mut state = seed | 1;
        let mut factor = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 33) as f64) / (u32::MAX as f64);
            1.0 - amplitude + 2.0 * amplitude * u
        };
        ActualTimes {
            p_cpu: tasks.iter().map(|t| t.p_cpu * factor()).collect(),
            p_gpu: tasks.iter().map(|t| t.p_gpu * factor()).collect(),
        }
    }

    fn duration(&self, task: usize, kind: PeKind) -> f64 {
        match kind {
            PeKind::Cpu => self.p_cpu[task],
            PeKind::Gpu => self.p_gpu[task],
        }
    }
}

/// Replay a *static* schedule under actual times: each PE runs its
/// tasks in the planned start order, back to back. Returns the realised
/// schedule.
pub fn replay_static(schedule: &Schedule, actual: &ActualTimes) -> Schedule {
    let mut by_pe: std::collections::HashMap<PeId, Vec<&Placement>> =
        std::collections::HashMap::new();
    for p in &schedule.placements {
        by_pe.entry(p.pe).or_default().push(p);
    }
    let mut placements = Vec::with_capacity(schedule.placements.len());
    for (pe, mut list) in by_pe {
        list.sort_by(|a, b| a.start.partial_cmp(&b.start).unwrap());
        let mut clock = 0.0;
        for p in list {
            let dur = actual.duration(p.task, pe.kind);
            placements.push(Placement {
                task: p.task,
                pe,
                start: clock,
                end: clock + dur,
            });
            clock += dur;
        }
    }
    Schedule { placements }
}

/// Replay *self-scheduling* under actual times: tasks in id order, each
/// to the worker that is free earliest (the dynamic policy reacts to
/// the actual durations, which is its whole advantage).
pub fn replay_self_scheduling(
    tasks: &TaskSet,
    platform: &PlatformSpec,
    actual: &ActualTimes,
) -> Schedule {
    let mut loads: Vec<(PeId, f64)> = (0..platform.gpus)
        .map(|i| (PeId::gpu(i), 0.0))
        .chain((0..platform.cpus).map(|i| (PeId::cpu(i), 0.0)))
        .collect();
    let mut placements = Vec::with_capacity(tasks.len());
    for t in tasks.iter() {
        let (slot, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap().then(a.0.cmp(&b.0)))
            .expect("at least one PE");
        let (pe, start) = loads[slot];
        let dur = actual.duration(t.id, pe.kind);
        placements.push(Placement {
            task: t.id,
            pe,
            start,
            end: start + dur,
        });
        loads[slot].1 += dur;
    }
    Schedule { placements }
}

/// One robustness measurement: planned vs realised makespan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustnessSample {
    /// Makespan the schedule promised under the estimates.
    pub planned: f64,
    /// Makespan realised under the actual times.
    pub realised: f64,
}

impl RobustnessSample {
    /// Degradation factor (1.0 = estimates held exactly).
    pub fn degradation(&self) -> f64 {
        if self.planned <= 0.0 {
            1.0
        } else {
            self.realised / self.planned
        }
    }
}

/// Measure a static schedule's robustness under noise.
pub fn measure(schedule: &Schedule, actual: &ActualTimes) -> RobustnessSample {
    RobustnessSample {
        planned: schedule.makespan(),
        realised: replay_static(schedule, actual).makespan(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binsearch::{dual_approx_schedule, BinarySearchConfig};

    fn instance(n: usize, seed: u64) -> TaskSet {
        let mut state = seed | 1;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64)
        };
        TaskSet::from_times(
            &(0..n)
                .map(|_| {
                    let gpu = 0.5 + 4.0 * next();
                    let accel = 1.0 + 6.0 * next();
                    (gpu * accel, gpu)
                })
                .collect::<Vec<_>>(),
        )
    }

    #[test]
    fn exact_replay_reproduces_the_plan() {
        let tasks = instance(25, 3);
        let platform = PlatformSpec::new(2, 2);
        let sched = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default()).schedule;
        let replayed = replay_static(&sched, &ActualTimes::exact(&tasks));
        replayed.validate(&tasks, &platform).unwrap();
        assert!((replayed.makespan() - sched.makespan()).abs() < 1e-9);
    }

    #[test]
    fn noise_is_deterministic_and_bounded() {
        let tasks = instance(15, 4);
        let a = ActualTimes::with_noise(&tasks, 0.2, 9);
        let b = ActualTimes::with_noise(&tasks, 0.2, 9);
        assert_eq!(a, b);
        for (t, (&ac, &ag)) in tasks.iter().zip(a.p_cpu.iter().zip(a.p_gpu.iter())) {
            assert!(ac >= t.p_cpu * 0.8 - 1e-12 && ac <= t.p_cpu * 1.2 + 1e-12);
            assert!(ag >= t.p_gpu * 0.8 - 1e-12 && ag <= t.p_gpu * 1.2 + 1e-12);
        }
    }

    #[test]
    fn degradation_is_bounded_by_noise_amplitude() {
        // A static replay cannot degrade by more than the worst per-task
        // factor: every machine's finish is a sum of scaled durations.
        let platform = PlatformSpec::new(2, 2);
        for seed in 1..10u64 {
            let tasks = instance(30, seed);
            let sched =
                dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default()).schedule;
            let actual = ActualTimes::with_noise(&tasks, 0.2, seed + 100);
            let sample = measure(&sched, &actual);
            assert!(
                sample.degradation() <= 1.2 + 1e-9,
                "seed {seed}: degradation {}",
                sample.degradation()
            );
            assert!(sample.degradation() >= 0.8 - 1e-9);
        }
    }

    #[test]
    fn static_dual_stays_competitive_with_dynamic_under_noise() {
        // The paper's one-round choice: even with ±20% estimation error
        // the dual-approx static schedule should not lose badly to
        // dynamic self-scheduling (which adapts but ignores task
        // heterogeneity).
        let platform = PlatformSpec::new(2, 2);
        let mut static_total = 0.0;
        let mut dynamic_total = 0.0;
        for seed in 1..15u64 {
            let tasks = instance(40, seed);
            let sched =
                dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default()).schedule;
            let actual = ActualTimes::with_noise(&tasks, 0.2, seed + 7);
            static_total += replay_static(&sched, &actual).makespan();
            dynamic_total += replay_self_scheduling(&tasks, &platform, &actual).makespan();
        }
        assert!(
            static_total <= dynamic_total,
            "static {static_total} vs dynamic {dynamic_total}"
        );
    }

    #[test]
    fn self_scheduling_replay_is_valid() {
        let tasks = instance(20, 6);
        let platform = PlatformSpec::new(1, 3);
        let actual = ActualTimes::with_noise(&tasks, 0.3, 2);
        let sched = replay_self_scheduling(&tasks, &platform, &actual);
        // Durations follow `actual`, so validate() against the original
        // task set would flag them; check structure manually instead.
        assert_eq!(sched.placements.len(), 20);
        let mut seen: Vec<bool> = vec![false; 20];
        for p in &sched.placements {
            assert!(!seen[p.task]);
            seen[p.task] = true;
            assert!(p.end > p.start);
        }
    }
}
