//! Baseline allocation policies (the strategies the paper compares
//! against in §I and §V).
//!
//! * [`self_scheduling`] — dynamic self-scheduling: tasks are handed out
//!   one at a time to whichever worker becomes free first, in arrival
//!   order (the "assign one work unit at a time" strategy of [10] and
//!   the natural policy of every master-worker code without a model of
//!   task costs).
//! * [`equal_power_split`] — static split assuming CPUs and GPUs have
//!   the *same* processing power ([11]): tasks are dealt round-robin
//!   over all PEs regardless of type.
//! * [`proportional_split`] — static split proportional to *theoretical
//!   computing power* ([12]): the task list is cut so the share of work
//!   (measured in task count-weighted time) matches each side's
//!   aggregate speed.
//! * [`lpt_single_kind`] — classic LPT on a single PE class; models the
//!   CPU-only (SWIPE/STRIPED/SWPS3) and GPU-only (CUDASW++) baselines.
//! * [`heft_lite`] — earliest-finish-time insertion over heterogeneous
//!   PEs; a stronger dynamic baseline than self-scheduling.

use crate::platform::PlatformSpec;
use crate::schedule::{PeId, PeKind, Placement, Schedule};
use crate::task::TaskSet;

/// Dynamic self-scheduling: each task (in id order) goes to the PE that
/// would start it earliest; ties prefer GPUs, then lower index. This is
/// exactly what a one-round master-worker loop with a shared task queue
/// produces.
pub fn self_scheduling(tasks: &TaskSet, platform: &PlatformSpec) -> Schedule {
    let mut loads: Vec<(PeId, f64)> = (0..platform.gpus)
        .map(|i| (PeId::gpu(i), 0.0))
        .chain((0..platform.cpus).map(|i| (PeId::cpu(i), 0.0)))
        .collect();
    assert!(
        !loads.is_empty() || tasks.is_empty(),
        "no PEs for a nonempty instance"
    );
    let mut placements = Vec::with_capacity(tasks.len());
    for t in tasks.iter() {
        // Earliest *finish* decides (a free CPU may still be the wrong
        // choice for a strongly accelerated task — that is the point of
        // this baseline's weakness): self-scheduling classically assigns
        // to the earliest *available* worker.
        let (slot, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.partial_cmp(&b.1 .1).unwrap().then(a.0.cmp(&b.0)))
            .expect("at least one PE");
        let (pe, start) = loads[slot];
        let dur = match pe.kind {
            PeKind::Cpu => t.p_cpu,
            PeKind::Gpu => t.p_gpu,
        };
        placements.push(Placement {
            task: t.id,
            pe,
            start,
            end: start + dur,
        });
        loads[slot].1 += dur;
    }
    Schedule { placements }
}

/// Static equal-power split ([11]): deal tasks round-robin over every
/// PE as if CPUs and GPUs were interchangeable.
pub fn equal_power_split(tasks: &TaskSet, platform: &PlatformSpec) -> Schedule {
    let pes: Vec<PeId> = (0..platform.gpus)
        .map(PeId::gpu)
        .chain((0..platform.cpus).map(PeId::cpu))
        .collect();
    assert!(!pes.is_empty() || tasks.is_empty());
    let mut loads = vec![0.0f64; pes.len()];
    let mut placements = Vec::with_capacity(tasks.len());
    for (i, t) in tasks.iter().enumerate() {
        let slot = i % pes.len();
        let pe = pes[slot];
        let dur = match pe.kind {
            PeKind::Cpu => t.p_cpu,
            PeKind::Gpu => t.p_gpu,
        };
        placements.push(Placement {
            task: t.id,
            pe,
            start: loads[slot],
            end: loads[slot] + dur,
        });
        loads[slot] += dur;
    }
    Schedule { placements }
}

/// Static proportional split ([12]): estimate each side's aggregate
/// speed from the task set itself (`Σp / Σp̄` gives the mean per-task
/// acceleration), give the GPU side the matching fraction of the task
/// *work*, then list-schedule each side.
pub fn proportional_split(tasks: &TaskSet, platform: &PlatformSpec) -> Schedule {
    if tasks.is_empty() {
        return Schedule::default();
    }
    if platform.gpus == 0 || platform.cpus == 0 {
        // Degenerates to a single-kind schedule.
        let kind = if platform.gpus > 0 {
            PeKind::Gpu
        } else {
            PeKind::Cpu
        };
        return lpt_single_kind(tasks, platform, kind);
    }

    // Aggregate speeds: a GPU processes 1/p̄ tasks per second on average.
    // Using total areas as the speed proxy keeps this faithful to
    // "theoretical computing power" without per-task modelling.
    let mean_accel = tasks.total_cpu_area() / tasks.total_gpu_area();
    let gpu_power = platform.gpus as f64 * mean_accel;
    let cpu_power = platform.cpus as f64;
    let gpu_fraction = gpu_power / (gpu_power + cpu_power);

    // Cut the task list (in id order, as a static split would) when the
    // accumulated CPU-equivalent work passes the GPU share.
    let total_work = tasks.total_cpu_area();
    let mut acc = 0.0;
    let mut gpu_ids = Vec::new();
    let mut cpu_ids = Vec::new();
    for t in tasks.iter() {
        if acc < gpu_fraction * total_work {
            gpu_ids.push(t.id);
        } else {
            cpu_ids.push(t.id);
        }
        acc += t.p_cpu;
    }

    let (mut placements, _) =
        crate::schedule::list_schedule(&gpu_ids, tasks, PeKind::Gpu, platform.gpus);
    let (cpu_pl, _) = crate::schedule::list_schedule(&cpu_ids, tasks, PeKind::Cpu, platform.cpus);
    placements.extend(cpu_pl);
    Schedule { placements }
}

/// LPT list scheduling restricted to one PE class — the schedule a
/// CPU-only or GPU-only tool reaches with `count` workers.
pub fn lpt_single_kind(tasks: &TaskSet, platform: &PlatformSpec, kind: PeKind) -> Schedule {
    let count = match kind {
        PeKind::Cpu => platform.cpus,
        PeKind::Gpu => platform.gpus,
    };
    assert!(count > 0 || tasks.is_empty(), "no {} PEs", kind.name());
    let mut ids: Vec<usize> = (0..tasks.len()).collect();
    ids.sort_by(|&a, &b| {
        let ta = &tasks.tasks()[a];
        let tb = &tasks.tasks()[b];
        let (pa, pb) = match kind {
            PeKind::Cpu => (ta.p_cpu, tb.p_cpu),
            PeKind::Gpu => (ta.p_gpu, tb.p_gpu),
        };
        pb.partial_cmp(&pa).unwrap().then(a.cmp(&b))
    });
    let (placements, _) = crate::schedule::list_schedule(&ids, tasks, kind, count);
    Schedule { placements }
}

/// HEFT-flavoured earliest-finish-time insertion: tasks in decreasing
/// mean processing time, each placed where it *finishes* earliest
/// (accounting for heterogeneous speeds, unlike self-scheduling).
pub fn heft_lite(tasks: &TaskSet, platform: &PlatformSpec) -> Schedule {
    let mut loads: Vec<(PeId, f64)> = (0..platform.gpus)
        .map(|i| (PeId::gpu(i), 0.0))
        .chain((0..platform.cpus).map(|i| (PeId::cpu(i), 0.0)))
        .collect();
    assert!(!loads.is_empty() || tasks.is_empty());
    let mut ids: Vec<usize> = (0..tasks.len()).collect();
    ids.sort_by(|&a, &b| {
        let ta = &tasks.tasks()[a];
        let tb = &tasks.tasks()[b];
        let ma = 0.5 * (ta.p_cpu + ta.p_gpu);
        let mb = 0.5 * (tb.p_cpu + tb.p_gpu);
        mb.partial_cmp(&ma).unwrap().then(a.cmp(&b))
    });

    let mut placements = Vec::with_capacity(tasks.len());
    for id in ids {
        let t = &tasks.tasks()[id];
        let (slot, finish) = loads
            .iter()
            .enumerate()
            .map(|(slot, &(pe, load))| {
                let dur = match pe.kind {
                    PeKind::Cpu => t.p_cpu,
                    PeKind::Gpu => t.p_gpu,
                };
                (slot, load + dur)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)))
            .expect("at least one PE");
        let (pe, start) = loads[slot];
        placements.push(Placement {
            task: id,
            pe,
            start,
            end: finish,
        });
        loads[slot].1 = finish;
    }
    Schedule { placements }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> TaskSet {
        TaskSet::from_times(&[
            (10.0, 2.0),
            (8.0, 2.0),
            (6.0, 3.0),
            (4.0, 2.0),
            (4.0, 4.0),
            (2.0, 2.0),
        ])
    }

    #[test]
    fn self_scheduling_is_valid_and_greedy() {
        let tasks = instance();
        let platform = PlatformSpec::new(2, 2);
        let s = self_scheduling(&tasks, &platform);
        s.validate(&tasks, &platform).unwrap();
        // First two tasks land on the (initially empty) GPUs.
        assert_eq!(s.placements[0].pe, PeId::gpu(0));
        assert_eq!(s.placements[1].pe, PeId::gpu(1));
    }

    #[test]
    fn equal_power_split_round_robins() {
        let tasks = instance();
        let platform = PlatformSpec::new(1, 1);
        let s = equal_power_split(&tasks, &platform);
        s.validate(&tasks, &platform).unwrap();
        // Even ids -> GPU0, odd -> CPU0 (GPUs listed first).
        for p in &s.placements {
            let expected = if p.task % 2 == 0 {
                PeKind::Gpu
            } else {
                PeKind::Cpu
            };
            assert_eq!(p.pe.kind, expected, "task {}", p.task);
        }
    }

    #[test]
    fn proportional_split_gives_gpus_their_share() {
        let tasks = instance();
        let platform = PlatformSpec::new(2, 2);
        let s = proportional_split(&tasks, &platform);
        s.validate(&tasks, &platform).unwrap();
        // Mean acceleration here is 34/15 ≈ 2.27, so the GPU side holds
        // ~69% of the aggregate power and receives the first ~23.6 units
        // of CPU-equivalent work: tasks 0-2.
        let a = s.assignment(tasks.len());
        assert_eq!(a.ids_of(PeKind::Gpu), vec![0, 1, 2]);
    }

    #[test]
    fn proportional_split_degenerates_without_gpus() {
        let tasks = instance();
        let platform = PlatformSpec::new(2, 0);
        let s = proportional_split(&tasks, &platform);
        s.validate(&tasks, &platform).unwrap();
        assert!(s.placements.iter().all(|p| p.pe.kind == PeKind::Cpu));
    }

    #[test]
    fn lpt_single_kind_cpu_and_gpu() {
        let tasks = instance();
        let platform = PlatformSpec::new(2, 2);
        let cpu = lpt_single_kind(&tasks, &platform, PeKind::Cpu);
        cpu.validate(&tasks, &platform).unwrap();
        assert!(cpu.placements.iter().all(|p| p.pe.kind == PeKind::Cpu));
        // LPT on 2 CPUs: loads 10+4+2=16 vs 8+6+4=18.
        assert!((cpu.makespan() - 18.0).abs() < 1e-9);

        let gpu = lpt_single_kind(&tasks, &platform, PeKind::Gpu);
        assert!(gpu.placements.iter().all(|p| p.pe.kind == PeKind::Gpu));
        // GPU times: 4,3,2,2,2,2 on 2 GPUs -> LPT gives 4+2+2 / 3+2+2.
        assert!((gpu.makespan() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn heft_beats_self_scheduling_on_skewed_instances() {
        // One task is terrible on CPU; self-scheduling will eventually
        // stick some big task on a CPU, HEFT won't.
        let tasks = TaskSet::from_times(&[(100.0, 2.0), (100.0, 2.0), (100.0, 2.0), (1.0, 1.0)]);
        let platform = PlatformSpec::new(2, 1);
        let heft = heft_lite(&tasks, &platform);
        let selfs = self_scheduling(&tasks, &platform);
        heft.validate(&tasks, &platform).unwrap();
        selfs.validate(&tasks, &platform).unwrap();
        assert!(heft.makespan() <= selfs.makespan());
        // HEFT keeps every 100-second task off the CPUs.
        let a = heft.assignment(tasks.len());
        for id in 0..3 {
            assert_eq!(a.kind_of(id), PeKind::Gpu);
        }
    }

    #[test]
    fn all_policies_produce_valid_schedules() {
        let tasks = instance();
        for (cpus, gpus) in [(1usize, 1usize), (4, 2), (2, 4), (8, 8)] {
            let platform = PlatformSpec::new(cpus, gpus);
            for (name, sched) in [
                ("self", self_scheduling(&tasks, &platform)),
                ("equal", equal_power_split(&tasks, &platform)),
                ("prop", proportional_split(&tasks, &platform)),
                ("heft", heft_lite(&tasks, &platform)),
            ] {
                sched
                    .validate(&tasks, &platform)
                    .unwrap_or_else(|e| panic!("{name} on {cpus}C/{gpus}G: {e}"));
            }
        }
    }

    #[test]
    fn empty_instance_for_all_policies() {
        let tasks = TaskSet::default();
        let platform = PlatformSpec::new(1, 1);
        assert_eq!(self_scheduling(&tasks, &platform).placements.len(), 0);
        assert_eq!(equal_power_split(&tasks, &platform).placements.len(), 0);
        assert_eq!(proportional_split(&tasks, &platform).placements.len(), 0);
        assert_eq!(heft_lite(&tasks, &platform).placements.len(), 0);
    }
}
