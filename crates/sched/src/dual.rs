//! One step of the dual-approximation algorithm (paper §III).
//!
//! A *g*-dual-approximation algorithm takes a guess `λ` and either
//! returns a schedule of makespan at most `g·λ` or answers — correctly —
//! that no schedule of makespan `λ` exists [15]. The paper instantiates
//! `g = 2` with the greedy knapsack; the DP variant of [13] tightens the
//! packing to `g = 3/2`.
//!
//! A step proceeds exactly as in the paper:
//!
//! 1. *Feasibility forcing.* In any schedule of length ≤ λ every task
//!    finishes within λ, so a task with `pⱼ > λ` can only run on a GPU
//!    and one with `p̄ⱼ > λ` only on a CPU; a task exceeding λ on both
//!    is a NO certificate.
//! 2. *Knapsack.* The free tasks are split by the minimisation knapsack
//!    (Eqs. 5–7): greedy by acceleration ratio until the GPU area
//!    reaches `kλ` (Figure 4), or the constrained DP.
//! 3. *Area check.* If the CPU workload `W_C` exceeds `mλ`, answer NO
//!    (constraint C1; Figure 5's caption: "otherwise λ is smaller than
//!    C*max").
//! 4. *List scheduling.* CPUs and GPUs are filled with list scheduling;
//!    on the GPU side the overflow task `j_last` is placed last, which
//!    is what Proposition 1's case analysis (Eq. 11) relies on.

use crate::knapsack::{dp_knapsack, greedy_knapsack, DpConfig};
use crate::platform::PlatformSpec;
use crate::schedule::{list_schedule, PeKind, Schedule};
use crate::task::TaskSet;
use swdual_obs::{Obs, Track};

/// Which knapsack the dual step uses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum KnapsackMethod {
    /// The paper's greedy (2-approximation).
    #[default]
    Greedy,
    /// The DP refinement with big-task constraints (3/2-approximation up
    /// to the grid relaxation).
    Dp(DpConfig),
}

/// Why a step answered NO.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NoReason {
    /// Some task exceeds λ on both PE types.
    TaskTooLong { task: usize },
    /// Tasks forced onto GPUs already exceed the GPU area bound `kλ`.
    ForcedGpuOverflow,
    /// CPU workload after the knapsack exceeds `mλ` (constraint C1).
    CpuAreaOverflow,
    /// The DP found no assignment satisfying its constraints.
    DpInfeasible,
}

/// Result of one dual step.
#[derive(Debug, Clone, PartialEq)]
pub enum DualStepResult {
    /// A schedule of makespan at most `g·λ`.
    Schedule(Schedule),
    /// No schedule of makespan ≤ λ exists (with the reason).
    No(NoReason),
}

impl DualStepResult {
    /// The schedule, if the step succeeded.
    pub fn schedule(self) -> Option<Schedule> {
        match self {
            DualStepResult::Schedule(s) => Some(s),
            DualStepResult::No(_) => None,
        }
    }

    /// True when the step answered NO.
    pub fn is_no(&self) -> bool {
        matches!(self, DualStepResult::No(_))
    }
}

/// Sort ids by decreasing processing time on `kind` (LPT order). Any
/// list order preserves the 2λ guarantee; LPT simply packs better.
fn lpt_order(ids: &mut [usize], tasks: &TaskSet, kind: PeKind) {
    ids.sort_by(|&a, &b| {
        let ta = &tasks.tasks()[a];
        let tb = &tasks.tasks()[b];
        let (pa, pb) = match kind {
            PeKind::Cpu => (ta.p_cpu, tb.p_cpu),
            PeKind::Gpu => (ta.p_gpu, tb.p_gpu),
        };
        pb.partial_cmp(&pa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
}

impl NoReason {
    /// Small stable code for metrics/trace annotations.
    fn code(&self) -> f64 {
        match self {
            NoReason::TaskTooLong { .. } => 1.0,
            NoReason::ForcedGpuOverflow => 2.0,
            NoReason::CpuAreaOverflow => 3.0,
            NoReason::DpInfeasible => 4.0,
        }
    }
}

/// Run one dual-approximation step with guess `lambda`.
pub fn dual_step(
    tasks: &TaskSet,
    platform: &PlatformSpec,
    lambda: f64,
    method: KnapsackMethod,
) -> DualStepResult {
    dual_step_observed(tasks, platform, lambda, method, &Obs::disabled())
}

/// [`dual_step`] with its decisions recorded: the knapsack split of
/// free tasks and the reason for any NO certificate land on the
/// scheduler track of `obs`.
pub fn dual_step_observed(
    tasks: &TaskSet,
    platform: &PlatformSpec,
    lambda: f64,
    method: KnapsackMethod,
    obs: &Obs,
) -> DualStepResult {
    let result = dual_step_inner(tasks, platform, lambda, method, obs);
    if let DualStepResult::No(reason) = &result {
        obs.instant(
            Track::Scheduler,
            "dual_step_no",
            &[("lambda", lambda), ("reason", reason.code())],
        );
        obs.counter("sched_no_certificates", 1.0);
    }
    result
}

fn dual_step_inner(
    tasks: &TaskSet,
    platform: &PlatformSpec,
    lambda: f64,
    method: KnapsackMethod,
    obs: &Obs,
) -> DualStepResult {
    assert!(
        lambda >= 0.0 && lambda.is_finite(),
        "λ must be finite and >= 0"
    );
    if tasks.is_empty() {
        return DualStepResult::Schedule(Schedule::default());
    }
    let m = platform.cpus;
    let k = platform.gpus;

    // Step 1: feasibility forcing.
    let mut forced_gpu: Vec<usize> = Vec::new();
    let mut forced_cpu: Vec<usize> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    for t in tasks.iter() {
        let cpu_ok = m > 0 && t.p_cpu <= lambda;
        let gpu_ok = k > 0 && t.p_gpu <= lambda;
        match (cpu_ok, gpu_ok) {
            (false, false) => return DualStepResult::No(NoReason::TaskTooLong { task: t.id }),
            (false, true) => forced_gpu.push(t.id),
            (true, false) => forced_cpu.push(t.id),
            (true, true) => free.push(t.id),
        }
    }

    let forced_gpu_area: f64 = forced_gpu.iter().map(|&id| tasks.tasks()[id].p_gpu).sum();
    let forced_cpu_area: f64 = forced_cpu.iter().map(|&id| tasks.tasks()[id].p_cpu).sum();
    let k_lambda = k as f64 * lambda;
    let m_lambda = m as f64 * lambda;
    // Area certificates use a relative tolerance: sums of the same task
    // times in different orders differ by ulps, and a NO answer must
    // stay correct when λ is *exactly* an achievable makespan.
    let fuzz = |bound: f64| bound * (1.0 + 1e-9) + 1e-12;
    if forced_gpu_area > fuzz(k_lambda) {
        return DualStepResult::No(NoReason::ForcedGpuOverflow);
    }

    // Step 2: knapsack over the free tasks with the remaining budget.
    let budget = k_lambda - forced_gpu_area;
    let (mut gpu_ids, mut cpu_ids, j_last, cpu_free_area) = match method {
        KnapsackMethod::Greedy => {
            let sol = greedy_knapsack(tasks, &free, budget);
            (sol.gpu_ids, sol.cpu_ids, sol.j_last, sol.cpu_area)
        }
        KnapsackMethod::Dp(config) => {
            // Big-task caps: an optimal λ-schedule has at most one task
            // longer than λ/2 per machine. Forced tasks of each class
            // consume part of the cap.
            let forced_big_gpu = forced_gpu
                .iter()
                .filter(|&&id| tasks.tasks()[id].p_gpu > lambda / 2.0)
                .count();
            let forced_big_cpu = forced_cpu
                .iter()
                .filter(|&&id| tasks.tasks()[id].p_cpu > lambda / 2.0)
                .count();
            if forced_big_gpu > k || forced_big_cpu > m {
                return DualStepResult::No(NoReason::DpInfeasible);
            }
            match dp_knapsack(
                tasks,
                &free,
                budget,
                lambda,
                k - forced_big_gpu,
                m - forced_big_cpu,
                config,
            ) {
                Some(sol) => (sol.gpu_ids, sol.cpu_ids, None, sol.cpu_area),
                None => return DualStepResult::No(NoReason::DpInfeasible),
            }
        }
    };

    obs.instant(
        Track::Scheduler,
        "knapsack",
        &[
            ("lambda", lambda),
            ("budget", budget),
            ("free", free.len() as f64),
            ("forced_gpu", forced_gpu.len() as f64),
            ("forced_cpu", forced_cpu.len() as f64),
            ("picked_gpu", gpu_ids.len() as f64),
            ("cpu_free_area", cpu_free_area),
            (
                "has_overflow_task",
                if j_last.is_some() { 1.0 } else { 0.0 },
            ),
        ],
    );
    obs.counter("sched_knapsack_runs", 1.0);

    // Step 3: CPU area check (constraint C1).
    let w_c = forced_cpu_area + cpu_free_area;
    if w_c > fuzz(m_lambda) {
        return DualStepResult::No(NoReason::CpuAreaOverflow);
    }

    // Step 4: list scheduling. GPU side: forced + knapsack picks, LPT,
    // with j_last (if any) moved last per Proposition 1.
    gpu_ids.extend(forced_gpu);
    cpu_ids.extend(forced_cpu);

    if let Some(last) = j_last {
        gpu_ids.retain(|&id| id != last);
        lpt_order(&mut gpu_ids, tasks, PeKind::Gpu);
        gpu_ids.push(last);
    } else {
        lpt_order(&mut gpu_ids, tasks, PeKind::Gpu);
    }
    lpt_order(&mut cpu_ids, tasks, PeKind::Cpu);

    let mut placements = Vec::with_capacity(tasks.len());
    if !gpu_ids.is_empty() {
        let (p, _) = list_schedule(&gpu_ids, tasks, PeKind::Gpu, k);
        placements.extend(p);
    }
    if !cpu_ids.is_empty() {
        let (p, _) = list_schedule(&cpu_ids, tasks, PeKind::Cpu, m);
        placements.extend(p);
    }
    DualStepResult::Schedule(Schedule { placements })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::PeKind;

    fn check_guarantee(tasks: &TaskSet, platform: &PlatformSpec, lambda: f64, g: f64) {
        match dual_step(tasks, platform, lambda, KnapsackMethod::Greedy) {
            DualStepResult::Schedule(s) => {
                s.validate(tasks, platform).expect("valid schedule");
                assert!(
                    s.makespan() <= g * lambda + 1e-9,
                    "makespan {} > {}·λ ({})",
                    s.makespan(),
                    g,
                    lambda
                );
            }
            DualStepResult::No(_) => {} // checked separately
        }
    }

    #[test]
    fn empty_instance_yields_empty_schedule() {
        let r = dual_step(
            &TaskSet::default(),
            &PlatformSpec::new(2, 2),
            1.0,
            KnapsackMethod::Greedy,
        );
        assert_eq!(r.schedule().unwrap().placements.len(), 0);
    }

    #[test]
    fn schedule_respects_two_lambda() {
        let tasks = TaskSet::from_times(&[
            (10.0, 2.0),
            (8.0, 2.0),
            (6.0, 3.0),
            (4.0, 2.0),
            (4.0, 4.0),
            (2.0, 2.0),
        ]);
        let platform = PlatformSpec::new(2, 2);
        for lambda in [4.0, 5.0, 6.0, 8.0, 10.0, 20.0] {
            check_guarantee(&tasks, &platform, lambda, 2.0);
        }
    }

    #[test]
    fn no_when_task_exceeds_lambda_everywhere() {
        let tasks = TaskSet::from_times(&[(10.0, 8.0)]);
        let platform = PlatformSpec::new(1, 1);
        let r = dual_step(&tasks, &platform, 5.0, KnapsackMethod::Greedy);
        assert_eq!(r, DualStepResult::No(NoReason::TaskTooLong { task: 0 }));
    }

    #[test]
    fn no_is_correct_area_certificate() {
        // Total minimum area 40 over 2 PEs -> OPT >= 20. λ = 10 must be NO.
        let tasks = TaskSet::from_times(&[(10.0, 10.0); 4]);
        let platform = PlatformSpec::new(1, 1);
        let r = dual_step(&tasks, &platform, 10.0, KnapsackMethod::Greedy);
        assert!(r.is_no());
    }

    #[test]
    fn forced_gpu_tasks_go_to_gpu() {
        // Task 0 cannot run on a CPU within λ = 5.
        let tasks = TaskSet::from_times(&[(100.0, 2.0), (1.0, 1.0)]);
        let platform = PlatformSpec::new(1, 1);
        let s = dual_step(&tasks, &platform, 5.0, KnapsackMethod::Greedy)
            .schedule()
            .expect("feasible");
        let a = s.assignment(2);
        assert_eq!(a.kind_of(0), PeKind::Gpu);
    }

    #[test]
    fn forced_cpu_tasks_go_to_cpu() {
        let tasks = TaskSet::from_times(&[(2.0, 100.0), (1.0, 1.0)]);
        let platform = PlatformSpec::new(1, 1);
        let s = dual_step(&tasks, &platform, 5.0, KnapsackMethod::Greedy)
            .schedule()
            .expect("feasible");
        assert_eq!(s.assignment(2).kind_of(0), PeKind::Cpu);
    }

    #[test]
    fn cpu_only_platform() {
        let tasks = TaskSet::from_times(&[(2.0, 1.0), (3.0, 1.0), (4.0, 1.0)]);
        let platform = PlatformSpec::new(2, 0);
        let s = dual_step(&tasks, &platform, 5.0, KnapsackMethod::Greedy)
            .schedule()
            .expect("feasible on CPUs alone");
        s.validate(&tasks, &platform).unwrap();
        assert!(s.makespan() <= 10.0);
        // Everything on CPUs.
        assert!(s.placements.iter().all(|p| p.pe.kind == PeKind::Cpu));
    }

    #[test]
    fn gpu_only_platform() {
        let tasks = TaskSet::from_times(&[(2.0, 1.0), (3.0, 1.0), (4.0, 1.0)]);
        let platform = PlatformSpec::new(0, 2);
        let s = dual_step(&tasks, &platform, 2.0, KnapsackMethod::Greedy)
            .schedule()
            .expect("feasible on GPUs alone");
        assert!(s.placements.iter().all(|p| p.pe.kind == PeKind::Gpu));
        assert!(s.makespan() <= 4.0);
    }

    #[test]
    fn gpu_only_platform_no_when_area_exceeds() {
        let tasks = TaskSet::from_times(&[(2.0, 3.0), (3.0, 3.0), (4.0, 3.0)]);
        let platform = PlatformSpec::new(0, 1);
        // Total GPU area 9 on 1 GPU; λ = 4 is a correct NO (OPT = 9).
        let r = dual_step(&tasks, &platform, 4.0, KnapsackMethod::Greedy);
        assert!(r.is_no());
    }

    #[test]
    fn dp_step_meets_three_halves_lambda() {
        let tasks = TaskSet::from_times(&[
            (10.0, 2.0),
            (8.0, 2.0),
            (6.0, 3.0),
            (4.0, 2.0),
            (4.0, 4.0),
            (2.0, 2.0),
            (3.0, 1.5),
            (5.0, 2.5),
        ]);
        let platform = PlatformSpec::new(2, 2);
        let method = KnapsackMethod::Dp(DpConfig::default());
        for lambda in [6.0, 8.0, 10.0, 14.0] {
            if let DualStepResult::Schedule(s) = dual_step(&tasks, &platform, lambda, method) {
                s.validate(&tasks, &platform).unwrap();
                assert!(
                    s.makespan() <= 1.5 * lambda + 1e-9,
                    "λ={lambda}: makespan {} > 1.5λ",
                    s.makespan()
                );
            }
        }
    }

    #[test]
    fn greedy_knapsack_prefers_accelerated_tasks_on_gpu() {
        // The strongly-accelerated tasks (ratio 10) must land on GPUs
        // before the weakly-accelerated ones (ratio 1.1).
        let tasks = TaskSet::from_times(&[(10.0, 1.0), (10.0, 1.0), (1.1, 1.0), (1.1, 1.0)]);
        let platform = PlatformSpec::new(2, 1);
        let s = dual_step(&tasks, &platform, 2.0, KnapsackMethod::Greedy)
            .schedule()
            .expect("feasible");
        let a = s.assignment(4);
        assert_eq!(a.kind_of(0), PeKind::Gpu);
        assert_eq!(a.kind_of(1), PeKind::Gpu);
    }
}
