//! The minimisation knapsack of §III (Eqs. 5–7) and its DP refinement.
//!
//! Given a guess `λ`, the assignment problem is: minimise the CPU
//! workload `W_C = Σ pⱼ xⱼ` subject to the GPU computational area
//! `Σ p̄ⱼ (1 - xⱼ) ≤ kλ`. Two solvers are provided:
//!
//! * [`greedy_knapsack`] — the paper's greedy: tasks sorted by
//!   decreasing acceleration ratio `pⱼ/p̄ⱼ`, packed onto the GPUs until
//!   the area reaches `kλ` (the final task `j_last` is allowed to
//!   overflow, Figure 4). This is what gives the 2-approximation.
//! * [`dp_knapsack`] — the dynamic-programming variant the paper
//!   attributes to [13] for the 3/2-approximation: GPU areas are
//!   discretised onto a grid and a DP additionally bounds the number of
//!   *big* tasks (processing time > λ/2) per resource class, which is
//!   what allows the tighter `3λ/2` packing argument. The grid makes it
//!   a `(1+ε)`-relaxation of the exact DP — the exact dynamic program
//!   of [13] runs on integral processing times, which real (fractional)
//!   sequence-comparison timings do not have.

use crate::task::TaskSet;

/// Output of a knapsack solver: the proposed split plus bookkeeping the
/// dual step needs for its guarantee argument.
#[derive(Debug, Clone, PartialEq)]
pub struct KnapsackSolution {
    /// Task ids sent to the GPUs, in packing order.
    pub gpu_ids: Vec<usize>,
    /// Task ids left to the CPUs.
    pub cpu_ids: Vec<usize>,
    /// The overflowing final GPU task (`j_last`), if the greedy filled
    /// past `kλ`. Always the last element of `gpu_ids` when present.
    pub j_last: Option<usize>,
    /// Resulting GPU computational area.
    pub gpu_area: f64,
    /// Resulting CPU workload `W_C`.
    pub cpu_area: f64,
}

/// The paper's greedy minimisation knapsack over the *free* tasks
/// (tasks not force-assigned by λ-feasibility; the caller handles forced
/// ones). `gpu_budget` is the remaining GPU area budget (`kλ` minus the
/// area of any forced GPU tasks).
///
/// Packing stops as soon as the accumulated area reaches `gpu_budget`;
/// the task that crosses the boundary stays on the GPUs (Figure 4:
/// "the greedy knapsack fills the GPUs with tasks up to getting a
/// computational area larger than kλ").
pub fn greedy_knapsack(tasks: &TaskSet, free_ids: &[usize], gpu_budget: f64) -> KnapsackSolution {
    // Sort free tasks by decreasing acceleration ratio.
    let mut order: Vec<usize> = free_ids.to_vec();
    order.sort_by(|&a, &b| {
        let ra = tasks.tasks()[a].acceleration();
        let rb = tasks.tasks()[b].acceleration();
        rb.partial_cmp(&ra)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });

    let mut gpu_ids = Vec::new();
    let mut cpu_ids = Vec::new();
    let mut gpu_area = 0.0f64;
    let mut cpu_area = 0.0f64;
    let mut j_last = None;
    let mut filled = gpu_area >= gpu_budget; // true immediately if budget <= 0

    for &id in &order {
        if filled {
            cpu_ids.push(id);
            cpu_area += tasks.tasks()[id].p_cpu;
        } else {
            gpu_area += tasks.tasks()[id].p_gpu;
            gpu_ids.push(id);
            if gpu_area >= gpu_budget {
                filled = true;
                j_last = Some(id);
            }
        }
    }
    KnapsackSolution {
        gpu_ids,
        cpu_ids,
        j_last,
        gpu_area,
        cpu_area,
    }
}

/// Configuration of the DP knapsack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DpConfig {
    /// Number of grid cells the GPU budget is discretised into. Larger
    /// values tighten the `(1+ε)` relaxation (`ε ≈ n / resolution`) at
    /// linear cost in time and memory.
    pub resolution: usize,
}

impl Default for DpConfig {
    fn default() -> Self {
        DpConfig { resolution: 512 }
    }
}

/// DP minimisation knapsack with big-task count constraints.
///
/// Solves: minimise `W_C` subject to
/// * GPU area ≤ `gpu_budget` (discretised, conservative rounding),
/// * at most `max_big_gpu` GPU tasks with `p̄ⱼ > λ/2`,
/// * at most `max_big_cpu` CPU tasks with `pⱼ > λ/2`.
///
/// The big-task bounds come from the structure of an optimal schedule of
/// length `λ`: no PE can run two tasks longer than `λ/2`, so at most one
/// per machine exists ([13]). They are what lets the caller place big
/// tasks one-per-machine and list-schedule the small ones within
/// `3λ/2`.
///
/// Returns `None` when no assignment satisfies the constraints.
pub fn dp_knapsack(
    tasks: &TaskSet,
    free_ids: &[usize],
    gpu_budget: f64,
    lambda: f64,
    max_big_gpu: usize,
    max_big_cpu: usize,
    config: DpConfig,
) -> Option<KnapsackSolution> {
    let res = config.resolution.max(1);
    // Grid unit; a task of GPU time t occupies ceil(t/unit) cells
    // (conservative: the real area of a selected set never exceeds the
    // budget implied by its cell count + n rounding slack).
    let unit = if gpu_budget > 0.0 {
        gpu_budget / res as f64
    } else {
        f64::INFINITY
    };
    let cells = |t: f64| -> usize {
        if t <= 0.0 {
            0
        } else if unit.is_infinite() {
            res + 1 // cannot fit anything in a zero budget
        } else {
            (t / unit).ceil() as usize
        }
    };

    const INF: f64 = f64::INFINITY;
    let n_states = (res + 1) * (max_big_gpu + 1);
    // dp[w * (max_big_gpu+1) + b] = (min CPU area, big CPU count at that min).
    let mut dp: Vec<(f64, usize)> = vec![(INF, usize::MAX); n_states];
    let mut choice: Vec<Vec<bool>> = Vec::with_capacity(free_ids.len()); // true = GPU
    dp[0] = (0.0, 0);

    let idx = |w: usize, b: usize| w * (max_big_gpu + 1) + b;

    for &id in free_ids {
        let task = &tasks.tasks()[id];
        let w_gpu = cells(task.p_gpu);
        let big_gpu = task.p_gpu > lambda / 2.0;
        let big_cpu = task.p_cpu > lambda / 2.0;
        let mut next: Vec<(f64, usize)> = vec![(INF, usize::MAX); n_states];
        let mut pick: Vec<bool> = vec![false; n_states];
        for w in 0..=res {
            for b in 0..=max_big_gpu {
                let (area, bigs) = dp[idx(w, b)];
                if area.is_infinite() {
                    continue;
                }
                // Option 1: task on CPU.
                let cpu_state = (area + task.p_cpu, bigs + usize::from(big_cpu));
                let tgt = &mut next[idx(w, b)];
                if cpu_state.0 < tgt.0 || (cpu_state.0 == tgt.0 && cpu_state.1 < tgt.1) {
                    *tgt = cpu_state;
                    pick[idx(w, b)] = false;
                }
                // Option 2: task on GPU (if it fits the grid and the big
                // budget).
                let nw = w + w_gpu;
                let nb = b + usize::from(big_gpu);
                if nw <= res && nb <= max_big_gpu {
                    let tgt = &mut next[idx(nw, nb)];
                    if area < tgt.0 || (area == tgt.0 && bigs < tgt.1) {
                        *tgt = (area, bigs);
                        pick[idx(nw, nb)] = true;
                    }
                }
            }
        }
        dp = next;
        choice.push(pick);
    }

    // Best feasible terminal state: min CPU area with big-CPU count ≤ cap.
    let mut best: Option<(usize, usize)> = None; // (w, b)
    let mut best_area = INF;
    for w in 0..=res {
        for b in 0..=max_big_gpu {
            let (area, bigs) = dp[idx(w, b)];
            if area < best_area && bigs <= max_big_cpu {
                best_area = area;
                best = Some((w, b));
            }
        }
    }
    let (mut w, mut b) = best?;

    // Reconstruct choices backwards.
    let mut on_gpu = vec![false; free_ids.len()];
    for (step, &id) in free_ids.iter().enumerate().rev() {
        let task = &tasks.tasks()[id];
        let picked_gpu = choice[step][idx(w, b)];
        on_gpu[step] = picked_gpu;
        if picked_gpu {
            w -= cells(task.p_gpu);
            b -= usize::from(task.p_gpu > lambda / 2.0);
        }
    }

    let mut gpu_ids = Vec::new();
    let mut cpu_ids = Vec::new();
    let mut gpu_area = 0.0;
    let mut cpu_area = 0.0;
    for (step, &id) in free_ids.iter().enumerate() {
        if on_gpu[step] {
            gpu_ids.push(id);
            gpu_area += tasks.tasks()[id].p_gpu;
        } else {
            cpu_ids.push(id);
            cpu_area += tasks.tasks()[id].p_cpu;
        }
    }
    Some(KnapsackSolution {
        gpu_ids,
        cpu_ids,
        j_last: None,
        gpu_area,
        cpu_area,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_prioritises_by_acceleration() {
        // Ratios: t0 = 5, t1 = 2, t2 = 1. Budget fits t0 then overflows
        // with t1 (j_last).
        let tasks = TaskSet::from_times(&[(10.0, 2.0), (6.0, 3.0), (4.0, 4.0)]);
        let ids: Vec<usize> = (0..3).collect();
        let sol = greedy_knapsack(&tasks, &ids, 4.0);
        assert_eq!(sol.gpu_ids, vec![0, 1]);
        assert_eq!(sol.j_last, Some(1));
        assert_eq!(sol.cpu_ids, vec![2]);
        assert!((sol.gpu_area - 5.0).abs() < 1e-12);
        assert!((sol.cpu_area - 4.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_overflow_invariant() {
        // Area without j_last is always < budget; with it, >= budget.
        let tasks = TaskSet::from_times(&[(8.0, 4.0), (9.0, 3.0), (10.0, 5.0), (2.0, 1.0)]);
        let ids: Vec<usize> = (0..4).collect();
        let budget = 6.0;
        let sol = greedy_knapsack(&tasks, &ids, budget);
        let last = sol.j_last.expect("budget is exceeded");
        let area_without: f64 = sol
            .gpu_ids
            .iter()
            .filter(|&&id| id != last)
            .map(|&id| tasks.tasks()[id].p_gpu)
            .sum();
        assert!(area_without < budget);
        assert!(sol.gpu_area >= budget);
        assert_eq!(*sol.gpu_ids.last().unwrap(), last);
    }

    #[test]
    fn greedy_zero_budget_sends_all_to_cpu() {
        let tasks = TaskSet::from_times(&[(4.0, 1.0), (2.0, 1.0)]);
        let sol = greedy_knapsack(&tasks, &[0, 1], 0.0);
        assert!(sol.gpu_ids.is_empty());
        assert_eq!(sol.j_last, None);
        assert_eq!(sol.cpu_ids.len(), 2);
        assert!((sol.cpu_area - 6.0).abs() < 1e-12);
    }

    #[test]
    fn greedy_huge_budget_takes_everything() {
        let tasks = TaskSet::from_times(&[(4.0, 1.0), (2.0, 1.0)]);
        let sol = greedy_knapsack(&tasks, &[0, 1], 1e9);
        assert_eq!(sol.gpu_ids.len(), 2);
        assert!(sol.cpu_ids.is_empty());
        assert_eq!(sol.j_last, None);
    }

    #[test]
    fn dp_respects_gpu_budget() {
        let tasks = TaskSet::from_times(&[(10.0, 4.0), (9.0, 4.0), (8.0, 4.0)]);
        let ids: Vec<usize> = (0..3).collect();
        // Budget 8: at most two of the 4.0-area tasks fit.
        let sol =
            dp_knapsack(&tasks, &ids, 8.0, 10.0, 3, 3, DpConfig::default()).expect("feasible");
        assert!(sol.gpu_area <= 8.0 + 1e-9);
        assert_eq!(sol.gpu_ids.len(), 2);
        // DP keeps the highest-CPU-cost tasks off the CPUs: CPU gets the
        // cheapest (8.0).
        assert!((sol.cpu_area - 8.0).abs() < 1e-9);
    }

    #[test]
    fn dp_big_task_constraint_is_enforced() {
        // λ = 10 -> tasks with p_gpu > 5 are big. Three big GPU tasks but
        // max_big_gpu = 1: only one may go to the GPUs.
        let tasks = TaskSet::from_times(&[(20.0, 6.0), (20.0, 6.0), (20.0, 6.0)]);
        let ids: Vec<usize> = (0..3).collect();
        let sol =
            dp_knapsack(&tasks, &ids, 100.0, 10.0, 1, 3, DpConfig::default()).expect("feasible");
        assert_eq!(sol.gpu_ids.len(), 1);
        assert_eq!(sol.cpu_ids.len(), 2);
    }

    #[test]
    fn dp_infeasible_big_cpu_returns_none() {
        // Every split leaves >= 2 big CPU tasks but only 1 is allowed,
        // and the GPU cannot take them (budget too small).
        let tasks = TaskSet::from_times(&[(8.0, 9.0), (8.0, 9.0), (8.0, 9.0)]);
        let ids: Vec<usize> = (0..3).collect();
        let sol = dp_knapsack(&tasks, &ids, 1.0, 10.0, 3, 1, DpConfig::default());
        assert!(sol.is_none());
    }

    #[test]
    fn dp_matches_greedy_on_easy_instance() {
        // Clear-cut instance: both should put the highly-accelerated
        // tasks on GPUs.
        let tasks = TaskSet::from_times(&[(100.0, 1.0), (90.0, 1.0), (1.0, 0.9), (1.0, 0.95)]);
        let ids: Vec<usize> = (0..4).collect();
        let greedy = greedy_knapsack(&tasks, &ids, 2.5);
        let dp =
            dp_knapsack(&tasks, &ids, 2.5, 200.0, 4, 4, DpConfig::default()).expect("feasible");
        let mut g = greedy.gpu_ids.clone();
        g.sort_unstable();
        let mut d = dp.gpu_ids.clone();
        d.sort_unstable();
        // Greedy overflows past the budget with j_last; DP stays within.
        assert!(dp.gpu_area <= 2.5 + 1e-9);
        assert!(g.contains(&0) && g.contains(&1));
        assert!(d.contains(&0) && d.contains(&1));
    }

    #[test]
    fn dp_is_near_optimal_vs_brute_force() {
        // DP (unlike the overflowing greedy) must match the best
        // *within-budget* assignment up to the grid relaxation: its cell
        // rounding may reject sets whose true area squeaks under the
        // budget, but it can never pick a worse CPU area than the best
        // set that fits even after rounding.
        let tasks = TaskSet::from_times(&[
            (10.0, 1.0),
            (30.0, 3.9),
            (30.0, 3.9),
            (5.0, 2.1),
            (12.0, 2.9),
        ]);
        let ids: Vec<usize> = (0..5).collect();
        let budget = 8.0;
        let config = DpConfig { resolution: 4096 };
        let unit = budget / config.resolution as f64;
        let dp = dp_knapsack(&tasks, &ids, budget, 1000.0, 5, 5, config).expect("feasible");
        assert!(dp.gpu_area <= budget + 1e-9);

        // Brute force over all 2^5 subsets, using the same conservative
        // cell rounding the DP applies.
        let mut best = f64::INFINITY;
        for mask in 0u32..32 {
            let mut gpu_cells = 0usize;
            let mut cpu = 0.0;
            for (bit, &id) in ids.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    gpu_cells += (tasks.tasks()[id].p_gpu / unit).ceil() as usize;
                } else {
                    cpu += tasks.tasks()[id].p_cpu;
                }
            }
            if gpu_cells <= config.resolution {
                best = best.min(cpu);
            }
        }
        assert!(
            (dp.cpu_area - best).abs() < 1e-9,
            "dp {} vs brute force {}",
            dp.cpu_area,
            best
        );
    }

    #[test]
    fn dp_empty_input() {
        let tasks = TaskSet::default();
        let sol = dp_knapsack(&tasks, &[], 10.0, 10.0, 2, 2, DpConfig::default()).unwrap();
        assert!(sol.gpu_ids.is_empty());
        assert!(sol.cpu_ids.is_empty());
        assert_eq!(sol.cpu_area, 0.0);
    }
}
