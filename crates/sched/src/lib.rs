//! # swdual-sched — the SWDUAL dual-approximation scheduler
//!
//! This crate is the paper's primary algorithmic contribution (§III): an
//! allocator that decides which tasks run on GPUs and which on CPUs so
//! that the global completion time (makespan) is minimised, using the
//! *dual approximation* technique of Hochbaum & Shmoys [15].
//!
//! * [`task`] — the task model: every task `Tⱼ` has two processing
//!   times, `pⱼ` on a CPU and `p̄ⱼ` on a GPU.
//! * [`platform`] — how many CPUs (`m`) and GPUs (`k`) exist.
//! * [`schedule`] — assignments, schedules, Gantt charts, validity.
//! * [`knapsack`] — the greedy minimisation knapsack (Eqs. 5–7) that
//!   fills the GPUs with the best-accelerated tasks, and the dynamic
//!   programming variant used by the 3/2-approximation.
//! * [`dual`] — one dual-approximation step: given a guess `λ`, either
//!   build a schedule of makespan ≤ 2λ (Proposition 1) or answer NO.
//! * [`binsearch`] — the binary search over `λ` (§III, *Binary Search*).
//! * [`policies`] — the baseline allocation strategies the paper
//!   compares against: self-scheduling [10], equal-power [11],
//!   proportional-power [12], plus LPT and a HEFT-flavoured insertion
//!   heuristic.
//! * [`metrics`] — makespan, idle time, utilisation, lower bounds.
//!
//! Everything here is pure scheduling: processing times in, schedule
//! out. The `swdual-platform` crate maps sequence-comparison tasks onto
//! processing times; the `swdual-runtime` crate executes schedules with
//! real threads.

pub mod binsearch;
pub mod dual;
pub mod exact;
pub mod gantt_svg;
pub mod knapsack;
pub mod metrics;
pub mod multiround;
pub mod platform;
pub mod policies;
pub mod remainder;
pub mod robustness;
pub mod schedule;
pub mod task;

pub use binsearch::{
    dual_approx_schedule, dual_approx_schedule_observed, BinarySearchConfig, BinarySearchOutcome,
};
pub use dual::{dual_step, dual_step_observed, DualStepResult, KnapsackMethod};
pub use platform::PlatformSpec;
pub use remainder::{reschedule_remainder, reschedule_remainder_weighted, WorkerFactors};
pub use schedule::{Assignment, PeId, PeKind, Schedule};
pub use task::{Task, TaskSet};
