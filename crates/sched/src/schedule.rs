//! Assignments, schedules and Gantt-chart accounting.

use crate::platform::PlatformSpec;
use crate::task::TaskSet;
use serde::{Deserialize, Serialize};

/// The two classes of processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PeKind {
    /// A CPU worker (set `C` in the paper).
    Cpu,
    /// A GPU worker (set `G`).
    Gpu,
}

impl PeKind {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PeKind::Cpu => "CPU",
            PeKind::Gpu => "GPU",
        }
    }
}

/// Identity of one processing element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeId {
    /// CPU or GPU.
    pub kind: PeKind,
    /// Index within its kind (`0..m` for CPUs, `0..k` for GPUs).
    pub index: usize,
}

impl PeId {
    /// CPU PE by index.
    pub fn cpu(index: usize) -> PeId {
        PeId {
            kind: PeKind::Cpu,
            index,
        }
    }
    /// GPU PE by index.
    pub fn gpu(index: usize) -> PeId {
        PeId {
            kind: PeKind::Gpu,
            index,
        }
    }
}

impl std::fmt::Display for PeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.kind.name(), self.index)
    }
}

/// The allocation function π of the paper: which *kind* of PE each task
/// runs on (the knapsack's `xⱼ` variables: `xⱼ = 1` ⇔ CPU).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    /// `kind[j]` = PE class of task `j`.
    kinds: Vec<PeKind>,
}

impl Assignment {
    /// Build from per-task kinds (indexed by task id).
    pub fn new(kinds: Vec<PeKind>) -> Assignment {
        Assignment { kinds }
    }

    /// Number of tasks covered.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True when no tasks are covered.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// PE class of task `j`.
    pub fn kind_of(&self, task_id: usize) -> PeKind {
        self.kinds[task_id]
    }

    /// Ids of the tasks assigned to `kind`.
    pub fn ids_of(&self, kind: PeKind) -> Vec<usize> {
        self.kinds
            .iter()
            .enumerate()
            .filter_map(|(id, &k)| (k == kind).then_some(id))
            .collect()
    }

    /// Computational area on the CPUs (`W_C = Σ pⱼ xⱼ`, Eq. 5 objective).
    pub fn cpu_area(&self, tasks: &TaskSet) -> f64 {
        self.ids_of(PeKind::Cpu)
            .iter()
            .map(|&id| tasks.tasks()[id].p_cpu)
            .sum()
    }

    /// Computational area on the GPUs (`Σ p̄ⱼ (1 - xⱼ)`, constraint 6).
    pub fn gpu_area(&self, tasks: &TaskSet) -> f64 {
        self.ids_of(PeKind::Gpu)
            .iter()
            .map(|&id| tasks.tasks()[id].p_gpu)
            .sum()
    }
}

/// One placed task: where and when it executes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    /// The task id.
    pub task: usize,
    /// The processing element executing it.
    pub pe: PeId,
    /// Start time.
    pub start: f64,
    /// Completion time.
    pub end: f64,
}

/// A complete schedule: every task placed on a PE with start/end times.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Schedule {
    /// Placements in no particular order.
    pub placements: Vec<Placement>,
}

impl Schedule {
    /// Makespan `C_max`: the latest completion time (0 for an empty
    /// schedule).
    pub fn makespan(&self) -> f64 {
        self.placements.iter().map(|p| p.end).fold(0.0, f64::max)
    }

    /// Completion time of one PE (0 if it received no tasks).
    pub fn pe_finish(&self, pe: PeId) -> f64 {
        self.placements
            .iter()
            .filter(|p| p.pe == pe)
            .map(|p| p.end)
            .fold(0.0, f64::max)
    }

    /// Busy time of one PE (sum of its placement durations).
    pub fn pe_busy(&self, pe: PeId) -> f64 {
        self.placements
            .iter()
            .filter(|p| p.pe == pe)
            .map(|p| p.end - p.start)
            .sum()
    }

    /// Total idle time across the platform up to the makespan: the
    /// quantity SWDUAL tries to minimise ("the execution on each of the
    /// processing elements finished with almost no idle time", §V-A).
    pub fn total_idle(&self, platform: &PlatformSpec) -> f64 {
        let cmax = self.makespan();
        let mut idle = 0.0;
        for i in 0..platform.cpus {
            idle += cmax - self.pe_busy(PeId::cpu(i));
        }
        for i in 0..platform.gpus {
            idle += cmax - self.pe_busy(PeId::gpu(i));
        }
        idle
    }

    /// Mean utilisation in `[0, 1]`: busy time over `total PEs × C_max`.
    pub fn utilisation(&self, platform: &PlatformSpec) -> f64 {
        let cmax = self.makespan();
        let denom = cmax * platform.total() as f64;
        if denom <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self.placements.iter().map(|p| p.end - p.start).sum();
        busy / denom
    }

    /// The kind-level assignment this schedule realises.
    pub fn assignment(&self, n_tasks: usize) -> Assignment {
        let mut kinds = vec![PeKind::Cpu; n_tasks];
        for p in &self.placements {
            kinds[p.task] = p.pe.kind;
        }
        Assignment::new(kinds)
    }

    /// Validate the schedule against its instance:
    /// every task placed exactly once, durations match the task's
    /// processing time on its PE kind, and no two placements on the same
    /// PE overlap. Returns a human-readable violation if any.
    pub fn validate(&self, tasks: &TaskSet, platform: &PlatformSpec) -> Result<(), String> {
        let mut seen = vec![false; tasks.len()];
        for p in &self.placements {
            let task = tasks
                .get(p.task)
                .ok_or_else(|| format!("placement references unknown task {}", p.task))?;
            if seen[p.task] {
                return Err(format!("task {} placed twice", p.task));
            }
            seen[p.task] = true;
            match p.pe.kind {
                PeKind::Cpu if p.pe.index >= platform.cpus => {
                    return Err(format!("CPU index {} out of range", p.pe.index))
                }
                PeKind::Gpu if p.pe.index >= platform.gpus => {
                    return Err(format!("GPU index {} out of range", p.pe.index))
                }
                _ => {}
            }
            let expected = match p.pe.kind {
                PeKind::Cpu => task.p_cpu,
                PeKind::Gpu => task.p_gpu,
            };
            if (p.end - p.start - expected).abs() > 1e-9 * expected.max(1.0) {
                return Err(format!(
                    "task {} duration {} != processing time {} on {}",
                    p.task,
                    p.end - p.start,
                    expected,
                    p.pe
                ));
            }
            if p.start < -1e-12 {
                return Err(format!("task {} starts before time 0", p.task));
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("task {missing} is not scheduled"));
        }

        // Overlap check per PE.
        let mut by_pe: std::collections::HashMap<PeId, Vec<(f64, f64, usize)>> =
            std::collections::HashMap::new();
        for p in &self.placements {
            by_pe
                .entry(p.pe)
                .or_default()
                .push((p.start, p.end, p.task));
        }
        for (pe, mut intervals) in by_pe {
            intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in intervals.windows(2) {
                if w[0].1 > w[1].0 + 1e-9 {
                    return Err(format!("tasks {} and {} overlap on {}", w[0].2, w[1].2, pe));
                }
            }
        }
        Ok(())
    }

    /// Render an ASCII Gantt chart (one row per PE), `width` characters
    /// wide — handy in examples and experiment logs.
    pub fn gantt(&self, platform: &PlatformSpec, width: usize) -> String {
        let cmax = self.makespan();
        if cmax <= 0.0 {
            return String::from("(empty schedule)");
        }
        let scale = width as f64 / cmax;
        let mut out = String::new();
        let pes: Vec<PeId> = (0..platform.gpus)
            .map(PeId::gpu)
            .chain((0..platform.cpus).map(PeId::cpu))
            .collect();
        for pe in pes {
            let mut row = vec![b'.'; width];
            for p in self.placements.iter().filter(|p| p.pe == pe) {
                let a = (p.start * scale).floor() as usize;
                let b = ((p.end * scale).ceil() as usize).min(width);
                let label = b"0123456789abcdefghijklmnopqrstuvwxyz"[p.task % 36];
                for slot in row.iter_mut().take(b).skip(a) {
                    *slot = label;
                }
            }
            out.push_str(&format!(
                "{:>5} |{}|\n",
                pe.to_string(),
                String::from_utf8(row).unwrap()
            ));
        }
        out.push_str(&format!("C_max = {cmax:.3}\n"));
        out
    }
}

/// List-schedule a sequence of tasks onto `count` identical PEs of the
/// given kind: each task goes to the currently least-loaded PE (§III:
/// "a list scheduling algorithm assigning the tasks on an available
/// processor of the corresponding type"). Returns the placements and the
/// finishing loads.
pub fn list_schedule(
    task_ids: &[usize],
    tasks: &TaskSet,
    kind: PeKind,
    count: usize,
) -> (Vec<Placement>, Vec<f64>) {
    assert!(
        count > 0 || task_ids.is_empty(),
        "no PEs for nonempty task list"
    );
    let mut loads = vec![0.0f64; count];
    let mut placements = Vec::with_capacity(task_ids.len());
    for &id in task_ids {
        // Least-loaded PE; ties to the lowest index for determinism.
        let (pe_idx, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap().then(a.0.cmp(&b.0)))
            .expect("count > 0");
        let task = &tasks.tasks()[id];
        let dur = match kind {
            PeKind::Cpu => task.p_cpu,
            PeKind::Gpu => task.p_gpu,
        };
        let start = loads[pe_idx];
        loads[pe_idx] += dur;
        placements.push(Placement {
            task: id,
            pe: PeId {
                kind,
                index: pe_idx,
            },
            start,
            end: start + dur,
        });
    }
    (placements, loads)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_tasks() -> TaskSet {
        TaskSet::from_times(&[(4.0, 1.0), (2.0, 1.0), (6.0, 2.0), (2.0, 2.0)])
    }

    #[test]
    fn assignment_areas() {
        let tasks = demo_tasks();
        let a = Assignment::new(vec![PeKind::Gpu, PeKind::Cpu, PeKind::Gpu, PeKind::Cpu]);
        assert!((a.cpu_area(&tasks) - 4.0).abs() < 1e-12); // 2 + 2
        assert!((a.gpu_area(&tasks) - 3.0).abs() < 1e-12); // 1 + 2
        assert_eq!(a.ids_of(PeKind::Gpu), vec![0, 2]);
        assert_eq!(a.kind_of(1), PeKind::Cpu);
    }

    #[test]
    fn list_schedule_balances_loads() {
        let tasks = demo_tasks();
        let (placements, loads) = list_schedule(&[0, 1, 2, 3], &tasks, PeKind::Cpu, 2);
        assert_eq!(placements.len(), 4);
        // Greedy: t0(4)->pe0, t1(2)->pe1, t2(6)->pe1 (load 2 < 4), t3(2)->pe0.
        assert!((loads[0] - 6.0).abs() < 1e-12);
        assert!((loads[1] - 8.0).abs() < 1e-12);
    }

    #[test]
    fn schedule_metrics_and_validation() {
        let tasks = demo_tasks();
        let platform = PlatformSpec::new(2, 1);
        let (mut placements, _) = list_schedule(&[0, 1], &tasks, PeKind::Cpu, 2);
        let (gpu_pl, _) = list_schedule(&[2, 3], &tasks, PeKind::Gpu, 1);
        placements.extend(gpu_pl);
        let sched = Schedule { placements };
        assert!(sched.validate(&tasks, &platform).is_ok());
        assert!((sched.makespan() - 4.0).abs() < 1e-12);
        assert!((sched.pe_busy(PeId::gpu(0)) - 4.0).abs() < 1e-12);
        assert!((sched.pe_busy(PeId::cpu(0)) - 4.0).abs() < 1e-12);
        assert!((sched.pe_busy(PeId::cpu(1)) - 2.0).abs() < 1e-12);
        assert!((sched.total_idle(&platform) - 2.0).abs() < 1e-12);
        let util = sched.utilisation(&platform);
        assert!((util - 10.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_missing_task() {
        let tasks = demo_tasks();
        let platform = PlatformSpec::new(2, 1);
        let (placements, _) = list_schedule(&[0, 1, 2], &tasks, PeKind::Cpu, 2);
        let sched = Schedule { placements };
        let err = sched.validate(&tasks, &platform).unwrap_err();
        assert!(err.contains("not scheduled"));
    }

    #[test]
    fn validation_catches_overlap() {
        let tasks = demo_tasks();
        let platform = PlatformSpec::new(1, 0);
        let sched = Schedule {
            placements: vec![
                Placement {
                    task: 0,
                    pe: PeId::cpu(0),
                    start: 0.0,
                    end: 4.0,
                },
                Placement {
                    task: 1,
                    pe: PeId::cpu(0),
                    start: 3.0,
                    end: 5.0,
                },
                Placement {
                    task: 2,
                    pe: PeId::cpu(0),
                    start: 5.0,
                    end: 11.0,
                },
                Placement {
                    task: 3,
                    pe: PeId::cpu(0),
                    start: 11.0,
                    end: 13.0,
                },
            ],
        };
        let err = sched.validate(&tasks, &platform).unwrap_err();
        assert!(err.contains("overlap"));
    }

    #[test]
    fn validation_catches_wrong_duration() {
        let tasks = demo_tasks();
        let platform = PlatformSpec::new(1, 0);
        let sched = Schedule {
            placements: vec![
                Placement {
                    task: 0,
                    pe: PeId::cpu(0),
                    start: 0.0,
                    end: 1.0,
                },
                Placement {
                    task: 1,
                    pe: PeId::cpu(0),
                    start: 1.0,
                    end: 3.0,
                },
                Placement {
                    task: 2,
                    pe: PeId::cpu(0),
                    start: 3.0,
                    end: 9.0,
                },
                Placement {
                    task: 3,
                    pe: PeId::cpu(0),
                    start: 9.0,
                    end: 11.0,
                },
            ],
        };
        let err = sched.validate(&tasks, &platform).unwrap_err();
        assert!(err.contains("duration"));
    }

    #[test]
    fn validation_catches_out_of_range_pe() {
        let tasks = TaskSet::from_times(&[(1.0, 1.0)]);
        let platform = PlatformSpec::new(1, 0);
        let sched = Schedule {
            placements: vec![Placement {
                task: 0,
                pe: PeId::cpu(3),
                start: 0.0,
                end: 1.0,
            }],
        };
        assert!(sched.validate(&tasks, &platform).is_err());
    }

    #[test]
    fn gantt_renders_rows_for_every_pe() {
        let tasks = demo_tasks();
        let platform = PlatformSpec::new(2, 1);
        let (mut placements, _) = list_schedule(&[0, 1], &tasks, PeKind::Cpu, 2);
        let (g, _) = list_schedule(&[2, 3], &tasks, PeKind::Gpu, 1);
        placements.extend(g);
        let sched = Schedule { placements };
        let chart = sched.gantt(&platform, 40);
        assert_eq!(chart.lines().count(), 4); // 3 PEs + C_max line
        assert!(chart.contains("GPU0"));
        assert!(chart.contains("CPU1"));
        assert!(chart.contains("C_max"));
    }

    #[test]
    fn empty_schedule() {
        let sched = Schedule::default();
        assert_eq!(sched.makespan(), 0.0);
        assert_eq!(sched.utilisation(&PlatformSpec::new(2, 2)), 0.0);
        assert_eq!(
            sched.gantt(&PlatformSpec::new(1, 1), 10),
            "(empty schedule)"
        );
    }
}
