//! Property tests for the resilience-adjacent scheduler modules:
//! multi-round allocation, remainder re-planning (the recovery path of
//! the fault-tolerant runtime) and robustness replay.

use proptest::prelude::*;
use swdual_sched::binsearch::{dual_approx_schedule, BinarySearchConfig};
use swdual_sched::multiround::multi_round_schedule;
use swdual_sched::remainder::reschedule_remainder;
use swdual_sched::robustness::{replay_static, ActualTimes};
use swdual_sched::{PlatformSpec, TaskSet};

/// Random task set: GPU time in (0.1, 5.0), acceleration in (0.2, 12) —
/// includes GPU-averse tasks (acceleration < 1).
fn task_set(max_n: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((0.1f64..5.0, 0.2f64..12.0), 1..max_n).prop_map(|v| {
        let times: Vec<(f64, f64)> = v.into_iter().map(|(gpu, acc)| (gpu * acc, gpu)).collect();
        TaskSet::from_times(&times)
    })
}

fn platform() -> impl Strategy<Value = PlatformSpec> {
    (1usize..6, 1usize..6).prop_map(|(m, k)| PlatformSpec::new(m, k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn one_round_multiround_equals_one_shot(tasks in task_set(40), pf in platform()) {
        // rounds = 1 releases everything at once: it must be the
        // one-shot dual-approximation schedule, makespan included.
        let one_shot = dual_approx_schedule(&tasks, &pf, BinarySearchConfig::default()).schedule;
        let multi = multi_round_schedule(&tasks, &pf, 1, BinarySearchConfig::default());
        prop_assert!(
            (one_shot.makespan() - multi.makespan()).abs() < 1e-9,
            "one-shot {} vs rounds=1 {}",
            one_shot.makespan(),
            multi.makespan()
        );
    }

    #[test]
    fn multiround_places_each_task_exactly_once(
        tasks in task_set(40),
        pf in platform(),
        rounds in 1usize..6,
    ) {
        let sched = multi_round_schedule(&tasks, &pf, rounds, BinarySearchConfig::default());
        let mut placed: Vec<usize> = sched.placements.iter().map(|p| p.task).collect();
        placed.sort_unstable();
        let expect: Vec<usize> = (0..tasks.len()).collect();
        prop_assert_eq!(placed, expect, "every task exactly once, rounds={}", rounds);
        // No machine runs two tasks at the same time and every PE index
        // exists on the platform.
        prop_assert!(sched.makespan() >= 0.0);
        for p in &sched.placements {
            prop_assert!(p.end >= p.start);
        }
    }

    #[test]
    fn multiround_never_misplaces_time(
        tasks in task_set(30),
        pf in platform(),
        rounds in 1usize..5,
    ) {
        // Per-machine, placements are back to back and non-overlapping.
        let sched = multi_round_schedule(&tasks, &pf, rounds, BinarySearchConfig::default());
        let mut by_pe: std::collections::HashMap<_, Vec<(f64, f64)>> =
            std::collections::HashMap::new();
        for p in &sched.placements {
            by_pe.entry(p.pe).or_default().push((p.start, p.end));
        }
        for (pe, mut spans) in by_pe {
            spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for w in spans.windows(2) {
                prop_assert!(
                    w[0].1 <= w[1].0 + 1e-9,
                    "overlap on {:?}: {:?} then {:?}",
                    pe, w[0], w[1]
                );
            }
        }
    }

    #[test]
    fn exact_replay_reproduces_planned_makespan(tasks in task_set(40), pf in platform()) {
        // Replaying a schedule under the estimates themselves must
        // reproduce the planned makespan exactly (the zero-noise fixed
        // point of the robustness model).
        let sched = dual_approx_schedule(&tasks, &pf, BinarySearchConfig::default()).schedule;
        let replayed = replay_static(&sched, &ActualTimes::exact(&tasks));
        prop_assert!(
            (replayed.makespan() - sched.makespan()).abs() < 1e-9,
            "replayed {} vs planned {}",
            replayed.makespan(),
            sched.makespan()
        );
    }

    #[test]
    fn replayed_makespan_is_monotone_under_uniform_slowdown(
        tasks in task_set(30),
        pf in platform(),
        scale in 1.0f64..3.0,
    ) {
        // Uniformly scaled-up actual times can only stretch the realised
        // makespan — and by exactly the scale factor, since every
        // machine's finish time is a sum of scaled durations.
        let sched = dual_approx_schedule(&tasks, &pf, BinarySearchConfig::default()).schedule;
        let base = replay_static(&sched, &ActualTimes::exact(&tasks)).makespan();
        let scaled = ActualTimes {
            p_cpu: tasks.iter().map(|t| t.p_cpu * scale).collect(),
            p_gpu: tasks.iter().map(|t| t.p_gpu * scale).collect(),
        };
        let slowed = replay_static(&sched, &scaled).makespan();
        prop_assert!(slowed >= base - 1e-9, "slowdown shrank the makespan");
        prop_assert!(
            (slowed - scale * base).abs() <= 1e-6 * base.max(1.0),
            "uniform scale {} should scale the makespan: {} vs {}",
            scale, slowed, scale * base
        );
    }

    #[test]
    fn remainder_reschedule_places_survivors_exactly_once(
        tasks in task_set(40),
        pf in platform(),
        keep_mask in prop::collection::vec(any::<bool>(), 40..41),
    ) {
        // The recovery path: an arbitrary subset of tasks is orphaned
        // and re-planned. Each orphan must appear exactly once, nothing
        // else may appear at all.
        let remaining: Vec<usize> = (0..tasks.len())
            .filter(|&t| keep_mask.get(t).copied().unwrap_or(false))
            .collect();
        let plan = reschedule_remainder(&tasks, &remaining, &pf, BinarySearchConfig::default());
        let mut placed: Vec<usize> = plan.placements.iter().map(|p| p.task).collect();
        placed.sort_unstable();
        prop_assert_eq!(placed, remaining);
    }

    #[test]
    fn remainder_reschedule_survives_single_species_platforms(
        tasks in task_set(25),
        cpus in 1usize..4,
    ) {
        // Graceful degradation: all GPUs dead leaves a CPU-only
        // platform; the re-plan must still place everything.
        let remaining: Vec<usize> = (0..tasks.len()).collect();
        let pf = PlatformSpec::new(cpus, 0);
        let plan = reschedule_remainder(&tasks, &remaining, &pf, BinarySearchConfig::default());
        prop_assert_eq!(plan.placements.len(), tasks.len());
        for p in &plan.placements {
            prop_assert_eq!(p.pe.kind, swdual_sched::schedule::PeKind::Cpu);
        }
    }
}
