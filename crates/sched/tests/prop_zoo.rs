//! Cross-zoo property suite: random mixed device-zoo platforms and
//! workloads, scheduled with the dual approximation on a conservative
//! two-species view (every GPU priced as the slowest class in the mix),
//! then replayed on each device's true class curve and audited through
//! `swdual_obs::analysis`.
//!
//! Properties:
//! * the 2λ guarantee HOLDS on the replayed (true-curve) makespan for
//!   every zoo composition;
//! * the greedy knapsack's acceleration-ratio ordering is respected
//!   perfectly — length-derived zoo tasks have ratios monotone in
//!   query length for every device class, so the GPU side is exactly
//!   the top of the ratio order;
//! * per-class acceleration ratios are themselves monotone in query
//!   length (the ordering invariant the knapsack's argument rests on);
//! * worker audits carry the device class the journal declared.

use proptest::prelude::*;
use swdual_gpusim::DeviceClass;
use swdual_obs::analysis::analyze_obs;
use swdual_obs::{Obs, Track};
use swdual_sched::binsearch::{dual_approx_schedule, BinarySearchConfig};
use swdual_sched::schedule::PeKind;
use swdual_sched::{PlatformSpec, Task, TaskSet};

/// End-to-end seconds on a zoo class for `len` residues against `db`
/// database residues (the estimator curve shared with the runtime).
fn class_seconds(class: DeviceClass, len: usize, db: u64) -> f64 {
    let (peak, half, overhead) = class.estimator_curve();
    let rate = peak * len as f64 / (len as f64 + half);
    overhead + len as f64 * db as f64 / (rate * 1e9)
}

/// End-to-end seconds on the SWIPE-class CPU worker (Table II).
fn cpu_seconds(len: usize, db: u64) -> f64 {
    let rate = 8.38 * len as f64 / (len as f64 + 25.0);
    1.8 + len as f64 * db as f64 / (rate * 1e9)
}

/// A random zoo: 1–4 CPU workers, 1–4 GPU workers of random classes.
fn zoo() -> impl Strategy<Value = (usize, Vec<DeviceClass>)> {
    (
        1usize..5,
        prop::collection::vec(0usize..DeviceClass::ALL.len(), 1..5),
    )
        .prop_map(|(cpus, idx)| (cpus, idx.into_iter().map(|i| DeviceClass::ALL[i]).collect()))
}

/// Random workload: query lengths and a database size.
fn workload() -> impl Strategy<Value = (Vec<usize>, u64)> {
    (
        prop::collection::vec(16usize..5000, 2..32),
        100_000u64..1_000_000_000,
    )
}

/// Conservative two-species task set: GPU time is the slowest class in
/// the mix, so every replayed placement finishes no later than planned.
fn conservative_tasks(lens: &[usize], db: u64, mix: &[DeviceClass]) -> TaskSet {
    TaskSet::new(
        lens.iter()
            .enumerate()
            .map(|(id, &len)| {
                let p_gpu = mix
                    .iter()
                    .map(|&c| class_seconds(c, len, db))
                    .fold(f64::NEG_INFINITY, f64::max);
                Task::new(id, cpu_seconds(len, db), p_gpu)
            })
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn class_acceleration_ratio_is_monotone_in_length(
        db in 100_000u64..2_000_000_000,
        a in 16usize..5000,
        b in 16usize..5000,
    ) {
        let (short, long) = if a <= b { (a, b) } else { (b, a) };
        for class in DeviceClass::ALL {
            let r_short = cpu_seconds(short, db) / class_seconds(class, short, db);
            let r_long = cpu_seconds(long, db) / class_seconds(class, long, db);
            prop_assert!(
                r_long >= r_short - 1e-12,
                "{class}: ratio {r_short} at len {short} > {r_long} at len {long} (db {db})"
            );
        }
    }

    #[test]
    fn zoo_journal_reports_two_lambda_holds_and_perfect_ordering(
        zoo_spec in zoo(),
        load in workload(),
    ) {
        let (cpus, mix) = zoo_spec;
        let (lens, db) = load;
        let tasks = conservative_tasks(&lens, db, &mix);
        let platform = PlatformSpec::new(cpus, mix.len());
        let outcome = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
        outcome.schedule.validate(&tasks, &platform).expect("valid zoo schedule");

        // Synthesize the journal the runtime would have produced:
        // GPU workers are ids 0..k (one per class), CPUs follow.
        let k = mix.len();
        let obs = Obs::enabled();
        for (w, class) in mix.iter().enumerate() {
            obs.instant(
                Track::Master,
                "worker_registered",
                &[("worker", w as f64), ("is_gpu", 1.0)],
            );
            obs.instant(
                Track::Master,
                &format!("device_class:{}", class.name()),
                &[("worker", w as f64)],
            );
        }
        for w in k..k + cpus {
            obs.instant(
                Track::Master,
                "worker_registered",
                &[("worker", w as f64), ("is_gpu", 0.0)],
            );
            obs.instant(Track::Master, "device_class:cpu", &[("worker", w as f64)]);
        }
        for (t, task) in tasks.tasks().iter().enumerate() {
            obs.instant(
                Track::Master,
                "task_model",
                &[("task", t as f64), ("p_cpu", task.p_cpu), ("p_gpu", task.p_gpu)],
            );
        }
        obs.instant(
            Track::Scheduler,
            "binsearch_done",
            &[
                ("iterations", outcome.iterations as f64),
                ("lower_bound", outcome.lower_bound),
                ("upper_bound", outcome.upper_bound),
                ("lambda", outcome.upper_bound),
            ],
        );
        // Planned spans at conservative times; actual spans replay each
        // GPU on its true class curve (≤ the conservative estimate).
        let mut clock = vec![0.0f64; k + cpus];
        for p in &outcome.schedule.placements {
            let (w, actual) = match p.pe.kind {
                PeKind::Gpu => (
                    p.pe.index,
                    class_seconds(mix[p.pe.index], lens[p.task], db),
                ),
                PeKind::Cpu => (k + p.pe.index, cpu_seconds(lens[p.task], db)),
            };
            obs.virtual_span(
                Track::Planned(w),
                &format!("task-{}", p.task),
                p.start,
                p.end - p.start,
                &[("task", p.task as f64)],
            );
            obs.span(
                Track::Worker(w),
                &format!("task-{}", p.task),
                clock[w] * 1e-6,
                actual * 1e-6,
                Some((clock[w], actual)),
                &[("task", p.task as f64), ("cells", (lens[p.task] as u64 * db) as f64)],
            );
            clock[w] += actual;
        }

        let report = analyze_obs(&obs);
        prop_assert!(report.has_bound);
        prop_assert!(
            report.bound_holds,
            "2λ must HOLD on the replayed makespan: modelled {} vs 2λ {} (zoo {:?})",
            report.modelled_makespan,
            report.two_lambda_bound,
            mix
        );
        prop_assert!(
            report.gpu_ordering_quality > 1.0 - 1e-9,
            "ordering quality {} < 1 for zoo {:?}",
            report.gpu_ordering_quality,
            mix
        );
        // Replay can only come in at or under the conservative plan.
        prop_assert!(
            report.modelled_makespan <= outcome.schedule.makespan() + 1e-9,
            "replayed {} > planned {}",
            report.modelled_makespan,
            outcome.schedule.makespan()
        );
        // Audits name every worker's class.
        prop_assert_eq!(report.workers.len(), k + cpus);
        for audit in &report.workers {
            if audit.worker < k {
                prop_assert!(audit.is_gpu);
                prop_assert_eq!(&audit.device_class, mix[audit.worker].name());
            } else {
                prop_assert!(!audit.is_gpu);
                prop_assert_eq!(&audit.device_class, "cpu");
            }
        }
    }

    #[test]
    fn conservative_plan_places_every_task_exactly_once(
        zoo_spec in zoo(),
        load in workload(),
    ) {
        let (cpus, mix) = zoo_spec;
        let (lens, db) = load;
        let tasks = conservative_tasks(&lens, db, &mix);
        let platform = PlatformSpec::new(cpus, mix.len());
        let outcome = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
        let mut placed: Vec<usize> = outcome.schedule.placements.iter().map(|p| p.task).collect();
        placed.sort_unstable();
        let expect: Vec<usize> = (0..tasks.len()).collect();
        prop_assert_eq!(placed, expect);
    }
}
