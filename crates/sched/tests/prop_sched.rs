//! Property tests for the dual-approximation scheduler: the 2λ
//! guarantee, NO-answer soundness, knapsack invariants and schedule
//! validity for every policy on arbitrary instances.

use proptest::prelude::*;
use swdual_sched::binsearch::{dual_approx_schedule, lower_bound, BinarySearchConfig};
use swdual_sched::dual::{dual_step, DualStepResult, KnapsackMethod};
use swdual_sched::knapsack::{greedy_knapsack, DpConfig};
use swdual_sched::policies;
use swdual_sched::schedule::PeKind;
use swdual_sched::{PlatformSpec, TaskSet};

/// Random task set: GPU time in (0.1, 5.0), acceleration in (0.2, 12) —
/// includes GPU-averse tasks (acceleration < 1).
fn task_set(max_n: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec((0.1f64..5.0, 0.2f64..12.0), 1..max_n).prop_map(|v| {
        let times: Vec<(f64, f64)> = v.into_iter().map(|(gpu, acc)| (gpu * acc, gpu)).collect();
        TaskSet::from_times(&times)
    })
}

fn platform() -> impl Strategy<Value = PlatformSpec> {
    (1usize..6, 1usize..6).prop_map(|(m, k)| PlatformSpec::new(m, k))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dual_step_guarantee(tasks in task_set(40), pf in platform(), lambda_scale in 0.2f64..3.0) {
        // Probe λ around the instance's lower bound.
        let lambda = lower_bound(&tasks, &pf) * lambda_scale;
        match dual_step(&tasks, &pf, lambda, KnapsackMethod::Greedy) {
            DualStepResult::Schedule(s) => {
                prop_assert!(s.validate(&tasks, &pf).is_ok());
                prop_assert!(s.makespan() <= 2.0 * lambda + 1e-9,
                    "makespan {} > 2λ = {}", s.makespan(), 2.0 * lambda);
            }
            DualStepResult::No(_) => {
                // Sound NO: λ must be below *some* achievable makespan
                // certificate. The area/length certificates used by the
                // step imply λ < OPT; we verify the weaker, checkable
                // fact that λ is under the proven lower bound times 2
                // could fail, so instead verify against a constructive
                // schedule below.
            }
        }
    }

    #[test]
    fn dual_step_never_says_no_above_known_makespan(tasks in task_set(30), pf in platform()) {
        // Completeness: any constructively achievable makespan M means
        // dual_step(λ = M) cannot answer NO (a schedule of length M
        // exists, so the step must find one of length ≤ 2M).
        for sched in [
            policies::self_scheduling(&tasks, &pf),
            policies::heft_lite(&tasks, &pf),
        ] {
            let m = sched.makespan();
            let r = dual_step(&tasks, &pf, m, KnapsackMethod::Greedy);
            prop_assert!(!r.is_no(), "NO at λ = achievable makespan {m}");
        }
    }

    #[test]
    fn binary_search_outcome_is_valid_and_bounded(tasks in task_set(40), pf in platform()) {
        let out = dual_approx_schedule(&tasks, &pf, BinarySearchConfig::default());
        prop_assert!(out.schedule.validate(&tasks, &pf).is_ok());
        // Makespan within 2x the final YES guess.
        prop_assert!(out.schedule.makespan() <= 2.0 * out.upper_bound + 1e-6);
        // Bound bookkeeping.
        prop_assert!(out.lower_bound <= out.upper_bound + 1e-9);
        prop_assert!(out.iterations >= 1);
        // Guarantee vs the instance-intrinsic lower bound.
        prop_assert!(out.schedule.makespan() >= lower_bound(&tasks, &pf) - 1e-9);
    }

    #[test]
    fn dp_binary_search_also_valid(tasks in task_set(24), pf in platform()) {
        let config = BinarySearchConfig {
            method: KnapsackMethod::Dp(DpConfig { resolution: 128 }),
            max_iterations: 24,
            ..BinarySearchConfig::default()
        };
        let out = dual_approx_schedule(&tasks, &pf, config);
        prop_assert!(out.schedule.validate(&tasks, &pf).is_ok());
    }

    #[test]
    fn greedy_knapsack_invariants(tasks in task_set(40), budget in 0.0f64..60.0) {
        let ids: Vec<usize> = (0..tasks.len()).collect();
        let sol = greedy_knapsack(&tasks, &ids, budget);
        // Partition covers everything exactly once.
        let mut all: Vec<usize> = sol.gpu_ids.iter().chain(sol.cpu_ids.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, ids.clone());
        // Area bookkeeping.
        let gpu_area: f64 = sol.gpu_ids.iter().map(|&i| tasks.tasks()[i].p_gpu).sum();
        prop_assert!((gpu_area - sol.gpu_area).abs() < 1e-9);
        // Constraint (6) modulo the overflow task: area without j_last
        // stays under the budget.
        match sol.j_last {
            Some(last) => {
                prop_assert_eq!(*sol.gpu_ids.last().unwrap(), last);
                let without: f64 = sol.gpu_ids.iter()
                    .filter(|&&i| i != last)
                    .map(|&i| tasks.tasks()[i].p_gpu)
                    .sum();
                prop_assert!(without < budget + 1e-9);
                prop_assert!(sol.gpu_area >= budget - 1e-9);
            }
            None => prop_assert!(sol.gpu_area < budget + 1e-9),
        }
        // CPU side of the partition holds everything else.
        prop_assert_eq!(sol.gpu_ids.len() + sol.cpu_ids.len(), tasks.len());
    }

    #[test]
    fn all_policies_valid_on_arbitrary_instances(tasks in task_set(40), pf in platform()) {
        for (name, sched) in [
            ("self", policies::self_scheduling(&tasks, &pf)),
            ("equal", policies::equal_power_split(&tasks, &pf)),
            ("prop", policies::proportional_split(&tasks, &pf)),
            ("heft", policies::heft_lite(&tasks, &pf)),
            ("lpt-cpu", policies::lpt_single_kind(&tasks, &pf, PeKind::Cpu)),
            ("lpt-gpu", policies::lpt_single_kind(&tasks, &pf, PeKind::Gpu)),
        ] {
            prop_assert!(sched.validate(&tasks, &pf).is_ok(), "{} invalid", name);
            prop_assert!(sched.makespan() >= 0.0);
        }
    }

    #[test]
    fn dual_never_loses_badly_to_baselines(tasks in task_set(30), pf in platform()) {
        // SWDUAL's schedule must stay within its guarantee of the best
        // baseline (baselines upper-bound OPT).
        let out = dual_approx_schedule(&tasks, &pf, BinarySearchConfig::default());
        let best_baseline = [
            policies::self_scheduling(&tasks, &pf).makespan(),
            policies::heft_lite(&tasks, &pf).makespan(),
            policies::proportional_split(&tasks, &pf).makespan(),
        ]
        .into_iter()
        .fold(f64::INFINITY, f64::min);
        prop_assert!(
            out.schedule.makespan() <= 2.0 * best_baseline + 1e-6,
            "dual {} vs best baseline {}",
            out.schedule.makespan(),
            best_baseline
        );
    }

    #[test]
    fn lower_bound_is_actually_a_lower_bound(tasks in task_set(25), pf in platform()) {
        // No policy can beat the lower bound.
        let lb = lower_bound(&tasks, &pf);
        for sched in [
            policies::self_scheduling(&tasks, &pf),
            policies::heft_lite(&tasks, &pf),
            dual_approx_schedule(&tasks, &pf, BinarySearchConfig::default()).schedule,
        ] {
            prop_assert!(sched.makespan() >= lb - 1e-9,
                "makespan {} < lower bound {}", sched.makespan(), lb);
        }
    }
}
