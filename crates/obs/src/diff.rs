//! Differential run analysis: fold two runs into a [`DiffReport`].
//!
//! The auditor ([`crate::analysis`]) and the profiler
//! ([`crate::profile`]) describe *one* run; this module compares two —
//! a baseline and a head — and classifies every shared metric as
//! IMPROVED, REGRESSED or NEUTRAL. The point is machine-checkable
//! before/after evidence: a kernel PR shows its GCUPS moved, a
//! scheduler PR shows its λ margin moved, and CI can gate on the
//! result.
//!
//! ## Threshold policy
//!
//! Metrics carry a [`Tolerance`] class deciding how big a delta must be
//! to leave NEUTRAL:
//!
//! * [`Tolerance::Exact`] — modelled-clock metrics. The simulator's
//!   virtual clock is deterministic: the same binary on the same input
//!   reproduces these to the bit, so any change beyond float noise
//!   (relative 1e-9) is real. This is what lets CI gate with zero
//!   noise allowance.
//! * [`Tolerance::Wall`] — wall-clock metrics, subject to host noise;
//!   compared with a relative tolerance (default 5%, CLI
//!   `--threshold`).
//! * [`Tolerance::Quantile`] — latency-quantile metrics. Quantiles
//!   read back through the live registry are log-bucketed with
//!   `γ = 2^(1/4)` ([`HISTOGRAM_GAMMA`]), so two faithful observers
//!   can disagree by up to one bucket's relative width; the tolerance
//!   is widened to at least `γ − 1 ≈ 18.9%` so a diff never flags a
//!   difference the histogram cannot resolve.
//!
//! Classification is antisymmetric by construction: swapping base and
//! head negates every delta and swaps IMPROVED with REGRESSED, and a
//! run diffed against itself is all-NEUTRAL with zero deltas — both
//! properties are proptested in `tests/prop_diff.rs`.

use crate::analysis::{analyze_events, RunReport};
use crate::journal::{parse_journal, JournalError};
use crate::metrics::HISTOGRAM_GAMMA;
use crate::profile::Profile;
use crate::{Event, Obs};
use serde::Serialize;
use std::collections::BTreeSet;

/// Schema tag of the diff report.
pub const DIFF_SCHEMA: &str = "swdual-diff/1";

/// Relative float-noise allowance for [`Tolerance::Exact`] metrics.
const EXACT_REL: f64 = 1e-9;

/// Absolute floor below which deltas are noise on any tolerance class.
const ABS_FLOOR: f64 = 1e-12;

/// How a metric's delta is judged (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Tolerance {
    /// Modelled-clock metric: deterministic, zero tolerance beyond
    /// float noise.
    Exact,
    /// Wall-clock metric: relative tolerance
    /// ([`DiffOptions::wall_tolerance`]).
    Wall,
    /// Latency quantile: wall tolerance widened to the histogram's
    /// one-bucket relative error.
    Quantile,
}

/// Verdict for one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum DiffClass {
    /// Moved in the good direction beyond tolerance.
    Improved,
    /// Moved in the bad direction beyond tolerance.
    Regressed,
    /// Within tolerance.
    Neutral,
}

impl DiffClass {
    /// Fixed-width label for text rendering.
    pub fn label(&self) -> &'static str {
        match self {
            DiffClass::Improved => "IMPROVED ",
            DiffClass::Regressed => "REGRESSED",
            DiffClass::Neutral => "neutral  ",
        }
    }
}

/// One compared metric.
#[derive(Debug, Clone, Serialize)]
pub struct MetricDiff {
    /// Hierarchical metric name, e.g. `makespan.modelled` or
    /// `worker.0.utilization_modelled`.
    pub name: String,
    /// Baseline value.
    pub base: f64,
    /// Head value.
    pub head: f64,
    /// `head − base`.
    pub delta: f64,
    /// `delta / max(|base|, |head|)` (0 when both sides are ~0).
    pub relative: f64,
    /// Whether a smaller value is the good direction.
    pub lower_is_better: bool,
    /// Tolerance class the delta was judged under.
    pub tolerance: Tolerance,
    /// The verdict.
    pub class: DiffClass,
}

/// A roofline verdict that changed between base and head.
#[derive(Debug, Clone, Serialize)]
pub struct VerdictFlip {
    /// Device id.
    pub device: usize,
    /// `"device"` for the device-level verdict, `"bucket"` for a
    /// query-length bucket.
    pub scope: String,
    /// Inclusive lower query length of the bucket (0 for device scope).
    pub min_len: usize,
    /// Exclusive upper query length of the bucket (0 for device scope).
    pub max_len: usize,
    /// Baseline verdict (`transfer-bound` / `compute-bound` / ...).
    pub base: String,
    /// Head verdict.
    pub head: String,
    /// Flips *to* compute-bound improve, *to* transfer-bound regress;
    /// anything else (e.g. to/from `unknown`) is neutral.
    pub class: DiffClass,
}

impl VerdictFlip {
    /// One-line description used in text reports and gate output.
    pub fn describe(&self) -> String {
        if self.scope == "device" {
            format!(
                "device.{}.verdict: {} -> {}",
                self.device, self.base, self.head
            )
        } else {
            format!(
                "device.{}.bucket[{}..{}].verdict: {} -> {}",
                self.device, self.min_len, self.max_len, self.base, self.head
            )
        }
    }
}

/// Knobs for a diff.
#[derive(Debug, Clone)]
pub struct DiffOptions {
    /// Relative tolerance for [`Tolerance::Wall`] metrics.
    pub wall_tolerance: f64,
    /// Also fold both runs' [`Profile`]s into the diff (per-phase
    /// self-times, per-device busy time, roofline verdicts).
    pub include_profile: bool,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            wall_tolerance: 0.05,
            include_profile: false,
        }
    }
}

impl DiffOptions {
    /// Effective tolerance for quantile metrics: the wall tolerance,
    /// but never tighter than the histogram's one-bucket relative
    /// error `γ − 1`.
    pub fn quantile_tolerance(&self) -> f64 {
        self.wall_tolerance.max(HISTOGRAM_GAMMA - 1.0)
    }

    fn relative_tolerance(&self, tolerance: Tolerance) -> f64 {
        match tolerance {
            Tolerance::Exact => EXACT_REL,
            Tolerance::Wall => self.wall_tolerance,
            Tolerance::Quantile => self.quantile_tolerance(),
        }
    }
}

/// Everything the differ can say about a pair of runs.
#[derive(Debug, Clone, Serialize)]
pub struct DiffReport {
    /// Schema tag ([`DIFF_SCHEMA`]).
    pub schema: String,
    /// False when the two runs are not an apples-to-apples pair
    /// (different task or worker counts); see `warnings`.
    pub comparable: bool,
    /// Human-readable caveats about the comparison.
    pub warnings: Vec<String>,
    /// Relative tolerance applied to wall-clock metrics.
    pub wall_tolerance: f64,
    /// Relative tolerance applied to quantile metrics.
    pub quantile_tolerance: f64,
    /// Every compared metric, in a stable order.
    pub metrics: Vec<MetricDiff>,
    /// Roofline verdicts that changed (empty without `--profile`).
    pub verdict_flips: Vec<VerdictFlip>,
    /// Metrics (and flips) classified improved.
    pub improved: usize,
    /// Metrics (and flips) classified regressed.
    pub regressed: usize,
    /// Metrics classified neutral.
    pub neutral: usize,
}

/// Internal builder accumulating metric rows.
struct DiffBuilder<'a> {
    opts: &'a DiffOptions,
    metrics: Vec<MetricDiff>,
    warnings: Vec<String>,
    comparable: bool,
}

impl<'a> DiffBuilder<'a> {
    fn new(opts: &'a DiffOptions) -> Self {
        DiffBuilder {
            opts,
            metrics: Vec::new(),
            warnings: Vec::new(),
            comparable: true,
        }
    }

    fn push(
        &mut self,
        name: impl Into<String>,
        base: f64,
        head: f64,
        lower_is_better: bool,
        tolerance: Tolerance,
    ) {
        self.metrics.push(classify(
            name.into(),
            base,
            head,
            lower_is_better,
            tolerance,
            self.opts,
        ));
    }

    fn warn(&mut self, message: String) {
        self.warnings.push(message);
    }

    fn incomparable(&mut self, message: String) {
        self.comparable = false;
        self.warnings.push(message);
    }
}

/// Classify one metric pair under the given tolerance and polarity.
pub fn classify(
    name: String,
    base: f64,
    head: f64,
    lower_is_better: bool,
    tolerance: Tolerance,
    opts: &DiffOptions,
) -> MetricDiff {
    let delta = head - base;
    let scale = base.abs().max(head.abs());
    let relative = if scale > 0.0 { delta / scale } else { 0.0 };
    let tol = opts.relative_tolerance(tolerance);
    let class = if delta.abs() <= tol * scale + ABS_FLOOR {
        DiffClass::Neutral
    } else if (delta < 0.0) == lower_is_better {
        DiffClass::Improved
    } else {
        DiffClass::Regressed
    };
    MetricDiff {
        name,
        base,
        head,
        delta,
        relative,
        lower_is_better,
        tolerance,
        class,
    }
}

use Tolerance::{Exact, Quantile, Wall};

/// Diff two folded [`RunReport`]s.
pub fn diff_reports(base: &RunReport, head: &RunReport, opts: &DiffOptions) -> DiffReport {
    let mut b = DiffBuilder::new(opts);
    fold_run_reports(&mut b, base, head);
    finish(b, Vec::new())
}

/// Diff two event streams: fold both into [`RunReport`]s (and, with
/// [`DiffOptions::include_profile`], [`Profile`]s) and compare.
pub fn diff_events(base: &[Event], head: &[Event], opts: &DiffOptions) -> DiffReport {
    let mut b = DiffBuilder::new(opts);
    fold_run_reports(&mut b, &analyze_events(base), &analyze_events(head));
    let flips = if opts.include_profile {
        fold_profiles(
            &mut b,
            &Profile::from_events(base),
            &Profile::from_events(head),
        )
    } else {
        Vec::new()
    };
    finish(b, flips)
}

/// Diff two live recorders.
pub fn diff_obs(base: &Obs, head: &Obs, opts: &DiffOptions) -> DiffReport {
    diff_events(&base.events(), &head.events(), opts)
}

/// Diff two JSON-lines journals (validating both headers).
pub fn diff_journals(
    base: &str,
    head: &str,
    opts: &DiffOptions,
) -> Result<DiffReport, JournalError> {
    let base = parse_journal(base)?;
    let head = parse_journal(head)?;
    Ok(diff_events(&base, &head, opts))
}

fn fold_run_reports(b: &mut DiffBuilder<'_>, base: &RunReport, head: &RunReport) {
    if base.tasks != head.tasks {
        b.incomparable(format!(
            "task counts differ ({} vs {}): the runs did different work, \
             absolute deltas are not apples-to-apples",
            base.tasks, head.tasks
        ));
    }
    if base.workers.len() != head.workers.len() {
        b.incomparable(format!(
            "worker counts differ ({} vs {})",
            base.workers.len(),
            head.workers.len()
        ));
    }

    b.push(
        "makespan.wall",
        base.wall_makespan,
        head.wall_makespan,
        true,
        Wall,
    );
    b.push(
        "makespan.modelled",
        base.modelled_makespan,
        head.modelled_makespan,
        true,
        Exact,
    );
    b.push(
        "makespan.planned",
        base.planned_makespan,
        head.planned_makespan,
        true,
        Exact,
    );
    if base.has_bound || head.has_bound {
        if base.has_bound != head.has_bound {
            b.warn(
                "only one run carries scheduler λ information; bound metrics compare \
                 against zero"
                    .to_string(),
            );
        }
        b.push("bound.lambda", base.lambda, head.lambda, true, Exact);
        b.push(
            "bound.two_lambda",
            base.two_lambda_bound,
            head.two_lambda_bound,
            true,
            Exact,
        );
        b.push(
            "bound.margin",
            base.bound_margin,
            head.bound_margin,
            false,
            Exact,
        );
        b.push(
            "bound.holds",
            if base.bound_holds { 1.0 } else { 0.0 },
            if head.bound_holds { 1.0 } else { 0.0 },
            false,
            Exact,
        );
        b.push(
            "bound.binsearch_iterations",
            base.binsearch_iterations as f64,
            head.binsearch_iterations as f64,
            true,
            Exact,
        );
    }
    b.push(
        "balance.load_imbalance",
        base.load_imbalance,
        head.load_imbalance,
        true,
        Exact,
    );
    b.push(
        "balance.moved_tasks",
        base.moved_tasks as f64,
        head.moved_tasks as f64,
        true,
        Exact,
    );
    b.push(
        "ordering.gpu_quality",
        base.gpu_ordering_quality,
        head.gpu_ordering_quality,
        false,
        Exact,
    );
    b.push(
        "skew.mean_abs",
        base.skew.mean_abs,
        head.skew.mean_abs,
        true,
        Exact,
    );
    b.push(
        "skew.max_abs",
        base.skew.max_abs,
        head.skew.max_abs,
        true,
        Exact,
    );

    for (clock, tol, bl, hl) in [
        ("wall", Quantile, &base.wall_latency, &head.wall_latency),
        (
            "modelled",
            Exact,
            &base.modelled_latency,
            &head.modelled_latency,
        ),
    ] {
        b.push(format!("latency.{clock}.p50"), bl.p50, hl.p50, true, tol);
        b.push(format!("latency.{clock}.p95"), bl.p95, hl.p95, true, tol);
        b.push(format!("latency.{clock}.p99"), bl.p99, hl.p99, true, tol);
        b.push(format!("latency.{clock}.max"), bl.max, hl.max, true, tol);
        b.push(format!("latency.{clock}.mean"), bl.mean, hl.mean, true, tol);
    }

    // Aggregate throughput over busy wall time (MCUPS), then the
    // per-worker view for workers present on both sides.
    let mcups = |r: &RunReport| {
        let busy: f64 = r.workers.iter().map(|w| w.busy_wall).sum();
        let cells: f64 = r.workers.iter().map(|w| w.mcups * w.busy_wall).sum();
        if busy > 0.0 {
            cells / busy
        } else {
            0.0
        }
    };
    b.push("throughput.mcups", mcups(base), mcups(head), false, Wall);

    for bw in &base.workers {
        match head.workers.iter().find(|hw| hw.worker == bw.worker) {
            Some(hw) => {
                let w = bw.worker;
                b.push(
                    format!("worker.{w}.busy_modelled"),
                    bw.busy_modelled,
                    hw.busy_modelled,
                    true,
                    Exact,
                );
                b.push(
                    format!("worker.{w}.utilization_modelled"),
                    bw.utilization_modelled,
                    hw.utilization_modelled,
                    false,
                    Exact,
                );
                b.push(
                    format!("worker.{w}.utilization_wall"),
                    bw.utilization_wall,
                    hw.utilization_wall,
                    false,
                    Wall,
                );
                b.push(format!("worker.{w}.mcups"), bw.mcups, hw.mcups, false, Wall);
            }
            None => b.warn(format!("worker {} only exists in the baseline", bw.worker)),
        }
    }
    for hw in &head.workers {
        if !base.workers.iter().any(|bw| bw.worker == hw.worker) {
            b.warn(format!("worker {} only exists in the head run", hw.worker));
        }
    }

    // Fault/retry counts: union of names, absent = 0. More faults is a
    // regression (of resilience demands, not of correctness).
    let names: BTreeSet<&str> = base
        .faults
        .iter()
        .chain(head.faults.iter())
        .map(|f| f.name.as_str())
        .collect();
    let count = |r: &RunReport, name: &str| {
        r.faults
            .iter()
            .find(|f| f.name == name)
            .map_or(0.0, |f| f.count as f64)
    };
    let total = |r: &RunReport| r.faults.iter().map(|f| f.count as f64).sum::<f64>();
    if !names.is_empty() {
        b.push("fault.total", total(base), total(head), true, Exact);
    }
    for name in names {
        b.push(
            format!("fault.{name}"),
            count(base, name),
            count(head, name),
            true,
            Exact,
        );
    }
}

fn fold_profiles(b: &mut DiffBuilder<'_>, base: &Profile, head: &Profile) -> Vec<VerdictFlip> {
    // Per-phase self-times summed across workers, on both clocks.
    let phase_names: BTreeSet<String> = base
        .workers
        .iter()
        .chain(head.workers.iter())
        .flat_map(|w| w.phases.iter().map(|p| p.name.clone()))
        .collect();
    let phase_total = |p: &Profile, name: &str| -> (f64, f64) {
        p.workers
            .iter()
            .flat_map(|w| w.phases.iter())
            .filter(|ph| ph.name == name)
            .fold((0.0, 0.0), |(w, m), ph| (w + ph.wall, m + ph.modelled))
    };
    for name in &phase_names {
        let (bw, bm) = phase_total(base, name);
        let (hw, hm) = phase_total(head, name);
        b.push(format!("phase.{name}.wall"), bw, hw, true, Wall);
        b.push(format!("phase.{name}.modelled"), bm, hm, true, Exact);
    }

    // Per-device busy-time accounting — all on the device's virtual
    // clock, hence exact.
    let mut flips = Vec::new();
    for bd in &base.devices {
        let Some(hd) = head.devices.iter().find(|hd| hd.device == bd.device) else {
            b.warn(format!("device {} only exists in the baseline", bd.device));
            continue;
        };
        let d = bd.device;
        b.push(
            format!("device.{d}.kernel_seconds"),
            bd.kernel_seconds,
            hd.kernel_seconds,
            true,
            Exact,
        );
        b.push(
            format!("device.{d}.launch_seconds"),
            bd.launch_seconds,
            hd.launch_seconds,
            true,
            Exact,
        );
        b.push(
            format!("device.{d}.transfer_seconds"),
            bd.transfer_seconds,
            hd.transfer_seconds,
            true,
            Exact,
        );
        b.push(
            format!("device.{d}.busy_seconds"),
            bd.busy_seconds,
            hd.busy_seconds,
            true,
            Exact,
        );
        b.push(
            format!("device.{d}.idle_seconds"),
            bd.idle_seconds,
            hd.idle_seconds,
            true,
            Exact,
        );
        b.push(
            format!("device.{d}.bytes_h2d"),
            bd.bytes_h2d,
            hd.bytes_h2d,
            true,
            Exact,
        );
        b.push(
            format!("device.{d}.achieved_gcups"),
            bd.achieved_gcups(),
            hd.achieved_gcups(),
            false,
            Exact,
        );
        b.push(
            format!("device.{d}.warp_efficiency"),
            bd.warp_efficiency(),
            hd.warp_efficiency(),
            false,
            Exact,
        );

        if bd.verdict() != hd.verdict() {
            flips.push(flip(d, "device", 0, 0, bd.verdict(), hd.verdict()));
        }
        for bb in &bd.buckets {
            if let Some(hb) = hd
                .buckets
                .iter()
                .find(|hb| hb.min_len == bb.min_len && hb.max_len == bb.max_len)
            {
                if bb.verdict != hb.verdict {
                    flips.push(flip(
                        d,
                        "bucket",
                        bb.min_len,
                        bb.max_len,
                        &bb.verdict,
                        &hb.verdict,
                    ));
                }
            }
        }
    }
    for hd in &head.devices {
        if !base.devices.iter().any(|bd| bd.device == hd.device) {
            b.warn(format!("device {} only exists in the head run", hd.device));
        }
    }
    flips
}

fn flip(
    device: usize,
    scope: &str,
    min_len: usize,
    max_len: usize,
    base: &str,
    head: &str,
) -> VerdictFlip {
    let class = if head == "compute-bound" && base == "transfer-bound" {
        DiffClass::Improved
    } else if head == "transfer-bound" && base == "compute-bound" {
        DiffClass::Regressed
    } else {
        DiffClass::Neutral
    };
    VerdictFlip {
        device,
        scope: scope.to_string(),
        min_len,
        max_len,
        base: base.to_string(),
        head: head.to_string(),
        class,
    }
}

fn finish(b: DiffBuilder<'_>, flips: Vec<VerdictFlip>) -> DiffReport {
    let count = |class: DiffClass| {
        b.metrics.iter().filter(|m| m.class == class).count()
            + flips.iter().filter(|f| f.class == class).count()
    };
    DiffReport {
        schema: DIFF_SCHEMA.to_string(),
        comparable: b.comparable,
        warnings: b.warnings,
        wall_tolerance: b.opts.wall_tolerance,
        quantile_tolerance: b.opts.quantile_tolerance(),
        improved: count(DiffClass::Improved),
        regressed: count(DiffClass::Regressed),
        neutral: count(DiffClass::Neutral),
        metrics: b.metrics,
        verdict_flips: flips,
    }
}

impl DiffReport {
    /// Assemble a report from externally classified rows (used by the
    /// bench trend differ).
    pub fn from_metrics(
        metrics: Vec<MetricDiff>,
        warnings: Vec<String>,
        opts: &DiffOptions,
    ) -> DiffReport {
        let mut b = DiffBuilder::new(opts);
        b.metrics = metrics;
        b.warnings = warnings;
        finish(b, Vec::new())
    }

    /// Names of regressed metrics (and flip descriptions). With
    /// `exact_only`, only modelled-clock ([`Tolerance::Exact`])
    /// regressions count — the scope a deterministic CI gate uses.
    pub fn regressions(&self, exact_only: bool) -> Vec<String> {
        let mut out: Vec<String> = self
            .metrics
            .iter()
            .filter(|m| m.class == DiffClass::Regressed)
            .filter(|m| !exact_only || m.tolerance == Tolerance::Exact)
            .map(|m| m.name.clone())
            .collect();
        // Roofline verdicts derive from modelled device times, so they
        // are in scope even for an exact-only gate.
        out.extend(
            self.verdict_flips
                .iter()
                .filter(|f| f.class == DiffClass::Regressed)
                .map(VerdictFlip::describe),
        );
        out
    }

    /// Whether the gate should fail.
    pub fn has_regressions(&self, exact_only: bool) -> bool {
        !self.regressions(exact_only).is_empty()
    }

    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("diff report serialises")
    }

    /// Human-readable rendering: headline counts, then every
    /// non-neutral metric with values and relative change; neutral
    /// metrics are summarised, not listed.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("run diff ({})", self.schema));
        line(format!(
            "  verdict                {} improved · {} regressed · {} neutral",
            self.improved, self.regressed, self.neutral
        ));
        line(format!(
            "  thresholds             modelled clock exact · wall ±{:.1}% · quantiles ±{:.1}%",
            100.0 * self.wall_tolerance,
            100.0 * self.quantile_tolerance
        ));
        if !self.comparable {
            line("  comparability          NOT comparable (see warnings)".to_string());
        }
        for w in &self.warnings {
            line(format!("  warning                {w}"));
        }
        let changed: Vec<&MetricDiff> = self
            .metrics
            .iter()
            .filter(|m| m.class != DiffClass::Neutral)
            .collect();
        if changed.is_empty() && self.verdict_flips.is_empty() {
            line(format!(
                "  all {} metrics NEUTRAL — the runs are equivalent under the thresholds",
                self.metrics.len()
            ));
        }
        for m in &changed {
            line(format!(
                "  {} {:<34} {:.6} -> {:.6}  ({}{:.2}%)",
                m.class.label(),
                m.name,
                m.base,
                m.head,
                if m.relative >= 0.0 { "+" } else { "" },
                100.0 * m.relative
            ));
        }
        for f in &self.verdict_flips {
            line(format!("  {} {}", f.class.label(), f.describe()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Track;

    fn sample_obs(scale: f64) -> Obs {
        let obs = Obs::enabled();
        obs.instant(
            Track::Master,
            "worker_registered",
            &[("worker", 0.0), ("is_gpu", 0.0)],
        );
        obs.instant(
            Track::Scheduler,
            "binsearch_done",
            &[
                ("iterations", 8.0),
                ("lower_bound", 1.5 * scale),
                ("lambda", 2.0 * scale),
            ],
        );
        obs.virtual_span(
            Track::Planned(0),
            "task-0",
            0.0,
            2.0 * scale,
            &[("task", 0.0)],
        );
        obs.span(
            Track::Worker(0),
            "task-0",
            0.1,
            0.2,
            Some((0.0, 2.0 * scale)),
            &[("task", 0.0), ("cells", 1.0e6)],
        );
        obs
    }

    #[test]
    fn self_diff_is_all_neutral_with_zero_deltas() {
        let obs = sample_obs(1.0);
        let report = diff_obs(&obs, &obs, &DiffOptions::default());
        assert!(report.comparable);
        assert_eq!(report.improved, 0);
        assert_eq!(report.regressed, 0);
        assert!(report.neutral > 0);
        for m in &report.metrics {
            assert_eq!(m.class, DiffClass::Neutral, "{}", m.name);
            assert_eq!(m.delta, 0.0, "{}", m.name);
        }
        assert!(!report.has_regressions(false));
    }

    #[test]
    fn slowed_modelled_clock_regresses_exact_metrics() {
        let base = sample_obs(1.0);
        let head = sample_obs(3.0);
        let report = diff_obs(&base, &head, &DiffOptions::default());
        let makespan = report
            .metrics
            .iter()
            .find(|m| m.name == "makespan.modelled")
            .unwrap();
        assert_eq!(makespan.class, DiffClass::Regressed);
        assert!((makespan.delta - 4.0).abs() < 1e-12);
        assert!(report.has_regressions(true), "exact-only gate must fire");
        assert!(report
            .regressions(true)
            .iter()
            .any(|n| n == "makespan.modelled"));
        // And the text report names the regressed metric.
        let text = report.to_text();
        assert!(text.contains("REGRESSED"), "{text}");
        assert!(text.contains("makespan.modelled"), "{text}");
    }

    #[test]
    fn improvement_and_regression_swap_under_reversal() {
        let base = sample_obs(1.0);
        let head = sample_obs(3.0);
        let opts = DiffOptions::default();
        let forward = diff_obs(&base, &head, &opts);
        let backward = diff_obs(&head, &base, &opts);
        assert_eq!(forward.metrics.len(), backward.metrics.len());
        for (f, r) in forward.metrics.iter().zip(&backward.metrics) {
            assert_eq!(f.name, r.name);
            assert!((f.delta + r.delta).abs() < 1e-12, "{}", f.name);
            match f.class {
                DiffClass::Improved => assert_eq!(r.class, DiffClass::Regressed),
                DiffClass::Regressed => assert_eq!(r.class, DiffClass::Improved),
                DiffClass::Neutral => assert_eq!(r.class, DiffClass::Neutral),
            }
        }
    }

    #[test]
    fn wall_metrics_get_relative_tolerance() {
        let opts = DiffOptions::default();
        // 4% wall drift: neutral under the default 5%.
        let m = classify("makespan.wall".into(), 1.0, 1.04, true, Wall, &opts);
        assert_eq!(m.class, DiffClass::Neutral);
        // The same drift on the modelled clock is a real regression.
        let m = classify("makespan.modelled".into(), 1.0, 1.04, true, Exact, &opts);
        assert_eq!(m.class, DiffClass::Regressed);
        // Quantiles tolerate up to the one-bucket error even when the
        // wall threshold is tighter.
        let m = classify("latency.p95".into(), 1.0, 1.15, true, Quantile, &opts);
        assert_eq!(m.class, DiffClass::Neutral);
        let m = classify("latency.p95".into(), 1.0, 1.25, true, Quantile, &opts);
        assert_eq!(m.class, DiffClass::Regressed);
    }

    #[test]
    fn higher_is_better_polarity_is_respected() {
        let opts = DiffOptions::default();
        let m = classify("bound.margin".into(), 1.0, 2.0, false, Exact, &opts);
        assert_eq!(m.class, DiffClass::Improved);
        let m = classify("bound.margin".into(), 2.0, 1.0, false, Exact, &opts);
        assert_eq!(m.class, DiffClass::Regressed);
    }

    #[test]
    fn fault_counts_are_unioned_and_flagged() {
        let base = sample_obs(1.0);
        let head = sample_obs(1.0);
        head.instant(Track::Faults, "worker_death", &[("worker", 0.0)]);
        head.instant(Track::Faults, "task_redispatch", &[("task", 0.0)]);
        head.instant(Track::Faults, "task_redispatch", &[("task", 1.0)]);
        let report = diff_obs(&base, &head, &DiffOptions::default());
        let find = |name: &str| report.metrics.iter().find(|m| m.name == name).unwrap();
        assert_eq!(find("fault.total").head, 3.0);
        assert_eq!(find("fault.total").class, DiffClass::Regressed);
        assert_eq!(find("fault.worker_death").class, DiffClass::Regressed);
        assert_eq!(find("fault.task_redispatch").delta, 2.0);
    }

    #[test]
    fn incomparable_runs_are_flagged_not_rejected() {
        let base = sample_obs(1.0);
        let head = sample_obs(1.0);
        head.span(
            Track::Worker(1),
            "task-1",
            0.4,
            0.2,
            Some((0.0, 1.0)),
            &[("task", 1.0)],
        );
        let report = diff_obs(&base, &head, &DiffOptions::default());
        assert!(!report.comparable);
        assert!(!report.warnings.is_empty());
        assert!(report.to_text().contains("NOT comparable"));
    }

    #[test]
    fn journal_diff_round_trips() {
        let base = sample_obs(1.0);
        let head = sample_obs(2.0);
        let bj = crate::export::journal_jsonl(&base);
        let hj = crate::export::journal_jsonl(&head);
        let from_journals =
            diff_journals(&bj, &hj, &DiffOptions::default()).expect("journals diff");
        let from_obs = diff_obs(&base, &head, &DiffOptions::default());
        assert_eq!(from_journals.to_json(), from_obs.to_json());
    }

    #[test]
    fn verdict_flip_classes() {
        assert_eq!(
            flip(0, "bucket", 0, 128, "transfer-bound", "compute-bound").class,
            DiffClass::Improved
        );
        assert_eq!(
            flip(0, "bucket", 0, 128, "compute-bound", "transfer-bound").class,
            DiffClass::Regressed
        );
        assert_eq!(
            flip(
                0,
                "device",
                0,
                0,
                "unknown (no device_spec in journal)",
                "compute-bound"
            )
            .class,
            DiffClass::Neutral
        );
    }
}
