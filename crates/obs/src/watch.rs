//! Incremental anomaly watchdog: folds bus events *online* into the
//! same aggregates `analysis`/`explain` compute post-hoc, and emits
//! typed [`Alert`]s while the run is still going.
//!
//! Feed every event from a [`BusSubscriber`](crate::BusSubscriber)
//! (or a replayed journal) through [`Watchdog::observe`]; it returns
//! the alerts that observation tripped. [`Watchdog::status`] renders
//! the current fold — λ and the running modelled makespan against the
//! paper's 2λ bound, per-worker queue depth and observed/estimate
//! ratio, ETA — for dashboards (`swdual top`).
//!
//! Alert taxonomy (one [`AlertKind`] each):
//!
//! * **straggler** — a worker's observed modelled time per unit of
//!   estimate exceeds the configured ratio;
//! * **bound-at-risk** — the running modelled makespan crosses a
//!   fraction of the guaranteed 2λ bound;
//! * **worker-dead** — the master detected a worker death;
//! * **queue-stall** — a worker with dispatched-but-uncompleted work
//!   has been silent long enough to approach its death deadline;
//! * **reopt-fired** — the master re-planned remaining work after
//!   observed skew crossed the re-optimization threshold.
//!
//! Alerts are journaled as `alert_<kind>` instants on the faults track
//! (numeric args only, like every event) and counted as
//! `swdual_alerts_total{kind=...}` in the metrics registry; see
//! [`record_alert`]. The watchdog skips alert events on input
//! ([`Event::is_alert`]) so replaying its own output is a no-op.

use crate::{Event, EventKind, Obs, Track};
use std::collections::BTreeMap;

/// Thresholds for the watchdog; the defaults are deliberately
/// conservative (modelled durations are deterministic given the rate
/// models, so a healthy worker's ratio sits at 1.0).
#[derive(Debug, Clone)]
pub struct WatchConfig {
    /// Fire `straggler` when observed/estimated modelled time ≥ this.
    pub straggler_ratio: f64,
    /// Jobs a worker must complete before its ratio is judged.
    pub straggler_min_jobs: usize,
    /// Fire `bound-at-risk` when running makespan ≥ fraction × 2λ.
    pub bound_risk_fraction: f64,
    /// Fire `queue-stall` when a worker with outstanding work has been
    /// silent ≥ this fraction of its master-published death deadline.
    pub stall_deadline_fraction: f64,
    /// Without a published deadline, fire `queue-stall` after silence
    /// ≥ max(`stall_min_secs`, `stall_factor` × longest job wall).
    pub stall_factor: f64,
    /// Floor on the silence threshold (seconds, wall clock).
    pub stall_min_secs: f64,
}

impl Default for WatchConfig {
    fn default() -> WatchConfig {
        WatchConfig {
            straggler_ratio: 2.0,
            straggler_min_jobs: 1,
            bound_risk_fraction: 0.9,
            stall_deadline_fraction: 0.8,
            stall_factor: 4.0,
            stall_min_secs: 0.25,
        }
    }
}

/// The five anomaly classes the watchdog can report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertKind {
    Straggler,
    BoundAtRisk,
    WorkerDead,
    QueueStall,
    ReoptFired,
}

impl AlertKind {
    pub const ALL: [AlertKind; 5] = [
        AlertKind::Straggler,
        AlertKind::BoundAtRisk,
        AlertKind::WorkerDead,
        AlertKind::QueueStall,
        AlertKind::ReoptFired,
    ];

    /// Stable label used in metrics (`swdual_alerts_total{kind=...}`)
    /// and reports.
    pub fn label(&self) -> &'static str {
        match self {
            AlertKind::Straggler => "straggler",
            AlertKind::BoundAtRisk => "bound-at-risk",
            AlertKind::WorkerDead => "worker-dead",
            AlertKind::QueueStall => "queue-stall",
            AlertKind::ReoptFired => "reopt-fired",
        }
    }

    /// The journal event name the alert is recorded under.
    pub fn event_name(&self) -> &'static str {
        match self {
            AlertKind::Straggler => "alert_straggler",
            AlertKind::BoundAtRisk => "alert_bound_at_risk",
            AlertKind::WorkerDead => "alert_worker_dead",
            AlertKind::QueueStall => "alert_queue_stall",
            AlertKind::ReoptFired => "alert_reopt_fired",
        }
    }

    /// Parse either the metrics label or the journal event name.
    pub fn from_label(label: &str) -> Option<AlertKind> {
        let label = label.strip_prefix("alert_").unwrap_or(label);
        AlertKind::ALL
            .into_iter()
            .find(|k| k.label() == label || k.event_name() == format!("alert_{label}"))
            .or_else(|| {
                let hyphenated = label.replace('_', "-");
                AlertKind::ALL.into_iter().find(|k| k.label() == hyphenated)
            })
    }
}

/// One fired anomaly.
#[derive(Debug, Clone)]
pub struct Alert {
    pub kind: AlertKind,
    /// The worker the alert names, when it names one.
    pub worker: Option<usize>,
    /// Wall-clock seconds (recorder clock) when the alert fired.
    pub wall: f64,
    /// The measured quantity that tripped the threshold (ratio,
    /// makespan seconds, silence seconds, observed skew).
    pub value: f64,
    /// The configured trip point it was compared against.
    pub threshold: f64,
    /// Human-readable one-liner.
    pub message: String,
}

impl Alert {
    /// The numeric args the alert instant is journaled with. Workers
    /// are −1 when the alert names none (events carry numbers only).
    pub fn args(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("worker", self.worker.map(|w| w as f64).unwrap_or(-1.0)),
            ("value", self.value),
            ("threshold", self.threshold),
        ]
    }
}

/// Journal an alert as an `alert_<kind>` instant on the faults track
/// and bump `swdual_alerts_total{kind=...}` in the metrics registry.
/// The instant goes through the normal recording path, so live bus
/// subscribers see it too.
pub fn record_alert(obs: &Obs, alert: &Alert) {
    obs.instant(Track::Faults, alert.kind.event_name(), &alert.args());
    obs.metrics()
        .counter("alerts", &[("kind", alert.kind.label())], 1.0);
}

/// Fold `alert_*` instants from a recorded event stream back into
/// [`Alert`]s (post-hoc counterpart of the live bus; used by
/// `SearchReport::alerts()` and the auditors).
pub fn alerts_from_events(events: &[Event]) -> Vec<Alert> {
    events
        .iter()
        .filter(|e| e.is_alert())
        .filter_map(|e| {
            let kind = AlertKind::from_label(&e.name)?;
            let worker = arg(e, "worker").filter(|w| *w >= 0.0).map(|w| w as usize);
            let value = arg(e, "value").unwrap_or(0.0);
            let threshold = arg(e, "threshold").unwrap_or(0.0);
            Some(Alert {
                kind,
                worker,
                wall: e.wall_start,
                value,
                threshold,
                message: describe(kind, worker, value, threshold),
            })
        })
        .collect()
}

fn arg(event: &Event, key: &str) -> Option<f64> {
    event.args.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

fn describe(kind: AlertKind, worker: Option<usize>, value: f64, threshold: f64) -> String {
    let who = match worker {
        Some(w) => format!("worker {w}"),
        None => "run".to_string(),
    };
    match kind {
        AlertKind::Straggler => format!(
            "{who}: observed/estimate modelled ratio {value:.2} \u{2265} {threshold:.2}"
        ),
        AlertKind::BoundAtRisk => format!(
            "{who}: running modelled makespan {value:.3}s \u{2265} {threshold:.3}s (risk fraction of the 2\u{3bb} bound)"
        ),
        AlertKind::WorkerDead => format!("{who}: declared dead (reason code {value:.0})"),
        AlertKind::QueueStall => format!(
            "{who}: silent {value:.3}s with work outstanding (threshold {threshold:.3}s)"
        ),
        AlertKind::ReoptFired => format!(
            "{who}: re-optimization re-planned remaining work (observed skew {value:.3} \u{2265} {threshold:.3})"
        ),
    }
}

/// Per-worker slice of [`WatchStatus`].
#[derive(Debug, Clone)]
pub struct WorkerWatch {
    pub worker: usize,
    pub is_gpu: bool,
    /// Completed jobs.
    pub jobs: usize,
    /// Wall-clock seconds spent in job spans.
    pub busy_wall: f64,
    /// Observed modelled seconds across completed jobs.
    pub busy_modelled: f64,
    /// Scheduler-estimated modelled seconds for those same jobs.
    pub est_modelled: f64,
    /// `busy_modelled / est_modelled` (1.0 until the first job).
    pub ratio: f64,
    /// Dispatched-but-uncompleted tasks.
    pub queue_depth: usize,
    /// Wall seconds since the worker last completed work or received a
    /// dispatch (relative to the fold's latest wall time).
    pub silent_for: f64,
    /// Master-published death-detection timeout (0 = none published).
    pub deadline_secs: f64,
    pub dead: bool,
}

/// Snapshot of the incremental fold, for dashboards.
#[derive(Debug, Clone, Default)]
pub struct WatchStatus {
    /// Latest wall time observed (recorder clock, seconds).
    pub wall: f64,
    /// The scheduler's λ (0 until `binsearch_done` is seen).
    pub lambda: f64,
    /// Whether λ is known, i.e. the 2λ bound is judgeable.
    pub has_bound: bool,
    pub tasks_total: usize,
    pub tasks_done: usize,
    /// Running modelled makespan: the latest modelled completion seen.
    pub running_makespan: f64,
    /// Crude modelled-clock ETA: running makespan scaled by remaining
    /// task count (0 until the first completion).
    pub eta_modelled: f64,
    pub workers: Vec<WorkerWatch>,
    /// Every alert fired so far, in firing order.
    pub alerts: Vec<Alert>,
}

#[derive(Debug)]
struct WorkerState {
    is_gpu: bool,
    jobs: usize,
    busy_wall: f64,
    busy_virt: f64,
    est_virt: f64,
    outstanding: Vec<i64>,
    last_activity_wall: f64,
    deadline_secs: f64,
    dead: bool,
    fired_straggler: bool,
    fired_stall: bool,
}

impl WorkerState {
    fn new(is_gpu: bool, wall: f64) -> WorkerState {
        WorkerState {
            is_gpu,
            jobs: 0,
            busy_wall: 0.0,
            busy_virt: 0.0,
            est_virt: 0.0,
            outstanding: Vec::new(),
            last_activity_wall: wall,
            deadline_secs: 0.0,
            dead: false,
            fired_straggler: false,
            fired_stall: false,
        }
    }

    fn ratio(&self) -> f64 {
        if self.est_virt > 0.0 {
            self.busy_virt / self.est_virt
        } else {
            1.0
        }
    }
}

/// The incremental fold. Create once, feed every event in stream
/// order.
pub struct Watchdog {
    cfg: WatchConfig,
    wall: f64,
    lambda: f64,
    makespan: f64,
    max_job_wall: f64,
    /// task → (p_cpu, p_gpu) scheduler estimates from `task_model`.
    model: BTreeMap<i64, (f64, f64)>,
    done: std::collections::BTreeSet<i64>,
    workers: BTreeMap<usize, WorkerState>,
    fired_bound: bool,
    alerts: Vec<Alert>,
}

impl Watchdog {
    pub fn new(cfg: WatchConfig) -> Watchdog {
        Watchdog {
            cfg,
            wall: 0.0,
            lambda: 0.0,
            makespan: 0.0,
            max_job_wall: 0.0,
            model: BTreeMap::new(),
            done: std::collections::BTreeSet::new(),
            workers: BTreeMap::new(),
            fired_bound: false,
            alerts: Vec::new(),
        }
    }

    /// Fold one event; returns the alerts it tripped (usually none).
    pub fn observe(&mut self, event: &Event) -> Vec<Alert> {
        // Never fold our own output back in.
        if event.is_alert() {
            return Vec::new();
        }
        self.wall = self.wall.max(event.wall_start + event.wall_dur);
        let mut fired = Vec::new();

        match event.track {
            Track::Scheduler if event.name == "binsearch_done" => {
                if let Some(lambda) = arg(event, "lambda") {
                    self.lambda = lambda;
                }
            }
            Track::Master => match event.name.as_str() {
                "worker_registered" => {
                    if let Some(w) = arg(event, "worker") {
                        let is_gpu = arg(event, "is_gpu").unwrap_or(0.0) > 0.5;
                        let wall = self.wall;
                        self.workers
                            .entry(w as usize)
                            .or_insert_with(|| WorkerState::new(is_gpu, wall))
                            .is_gpu = is_gpu;
                    }
                }
                "task_model" => {
                    if let Some(task) = arg(event, "task") {
                        self.model.insert(
                            task as i64,
                            (
                                arg(event, "p_cpu").unwrap_or(0.0),
                                arg(event, "p_gpu").unwrap_or(0.0),
                            ),
                        );
                    }
                }
                "task_dispatch" => {
                    let worker = arg(event, "worker").unwrap_or(-1.0);
                    if worker >= 0.0 {
                        if let Some(task) = arg(event, "task") {
                            let wall = self.wall;
                            let state = self
                                .workers
                                .entry(worker as usize)
                                .or_insert_with(|| WorkerState::new(false, wall));
                            state.outstanding.push(task as i64);
                            state.last_activity_wall = state.last_activity_wall.max(wall);
                        }
                    }
                }
                "worker_deadline" => {
                    if let (Some(w), Some(timeout)) = (arg(event, "worker"), arg(event, "timeout"))
                    {
                        let wall = self.wall;
                        self.workers
                            .entry(w as usize)
                            .or_insert_with(|| WorkerState::new(false, wall))
                            .deadline_secs = timeout;
                    }
                }
                _ => {}
            },
            Track::Worker(w) if event.kind == EventKind::Span && !event.is_profile_detail() => {
                self.fold_job(w, event, &mut fired);
            }
            Track::Faults => match event.name.as_str() {
                "worker_death" => {
                    if let Some(w) = arg(event, "worker") {
                        let w = w as usize;
                        let wall = self.wall;
                        let state = self
                            .workers
                            .entry(w)
                            .or_insert_with(|| WorkerState::new(false, wall));
                        if !state.dead {
                            state.dead = true;
                            state.outstanding.clear();
                            self.push_alert(
                                &mut fired,
                                AlertKind::WorkerDead,
                                Some(w),
                                arg(event, "reason").unwrap_or(0.0),
                                0.0,
                            );
                        }
                    }
                }
                "reopt_replan" => {
                    self.push_alert(
                        &mut fired,
                        AlertKind::ReoptFired,
                        None,
                        arg(event, "skew").unwrap_or(0.0),
                        arg(event, "threshold").unwrap_or(0.0),
                    );
                }
                _ => {}
            },
            _ => {}
        }

        self.check_stalls(&mut fired);
        fired
    }

    /// Fold a completed worker span: busy time, estimate consumption,
    /// outstanding-queue retirement, then the straggler and
    /// bound-at-risk judgements.
    fn fold_job(&mut self, w: usize, event: &Event, fired: &mut Vec<Alert>) {
        let task = arg(event, "task").map(|t| t as i64).or_else(|| {
            event
                .name
                .strip_prefix("task-")
                .and_then(|s| s.parse().ok())
        });
        let virt_end = event.virt_start.and_then(|s| event.virt_dur.map(|d| s + d));
        let wall = self.wall;
        let is_gpu = self.workers.get(&w).map(|s| s.is_gpu).unwrap_or(false);
        let est = task
            .and_then(|t| self.model.get(&t))
            .map(|(p_cpu, p_gpu)| if is_gpu { *p_gpu } else { *p_cpu })
            .unwrap_or(0.0);
        let state = self
            .workers
            .entry(w)
            .or_insert_with(|| WorkerState::new(false, wall));
        state.busy_wall += event.wall_dur;
        state.last_activity_wall = state.last_activity_wall.max(wall);
        state.fired_stall = false; // activity re-arms the stall alarm
        if let Some(task) = task {
            state.jobs += 1;
            state.busy_virt += event.virt_dur.unwrap_or(0.0);
            state.est_virt += est;
            state.outstanding.retain(|t| *t != task);
            self.done.insert(task);
        }
        self.max_job_wall = self.max_job_wall.max(event.wall_dur);
        if let Some(end) = virt_end {
            self.makespan = self.makespan.max(end);
        }

        // Straggler: enough evidence, ratio at/over threshold, once.
        let state = self.workers.get_mut(&w).expect("just inserted");
        if !state.fired_straggler
            && state.jobs >= self.cfg.straggler_min_jobs
            && state.est_virt > 0.0
        {
            let ratio = state.ratio();
            if ratio >= self.cfg.straggler_ratio {
                state.fired_straggler = true;
                let threshold = self.cfg.straggler_ratio;
                self.push_alert(fired, AlertKind::Straggler, Some(w), ratio, threshold);
            }
        }

        // Bound-at-risk: running makespan vs fraction of 2λ, once.
        if !self.fired_bound && self.lambda > 0.0 {
            let guard = self.cfg.bound_risk_fraction * 2.0 * self.lambda;
            if self.makespan >= guard {
                self.fired_bound = true;
                self.push_alert(fired, AlertKind::BoundAtRisk, None, self.makespan, guard);
            }
        }
    }

    /// Silent-death proximity: a live worker with outstanding work and
    /// no activity for too long. "Too long" prefers the master's
    /// published death deadline; without one it falls back to a
    /// multiple of the longest job seen.
    fn check_stalls(&mut self, fired: &mut Vec<Alert>) {
        let mut to_fire = Vec::new();
        for (w, state) in &mut self.workers {
            if state.dead || state.fired_stall || state.outstanding.is_empty() {
                continue;
            }
            let silence = self.wall - state.last_activity_wall;
            let threshold = if state.deadline_secs > 0.0 {
                self.cfg.stall_deadline_fraction * state.deadline_secs
            } else {
                (self.cfg.stall_factor * self.max_job_wall).max(self.cfg.stall_min_secs)
            };
            if silence >= threshold && threshold > 0.0 {
                state.fired_stall = true;
                to_fire.push((*w, silence, threshold));
            }
        }
        for (w, silence, threshold) in to_fire {
            self.push_alert(fired, AlertKind::QueueStall, Some(w), silence, threshold);
        }
    }

    fn push_alert(
        &mut self,
        fired: &mut Vec<Alert>,
        kind: AlertKind,
        worker: Option<usize>,
        value: f64,
        threshold: f64,
    ) {
        let alert = Alert {
            kind,
            worker,
            wall: self.wall,
            value,
            threshold,
            message: describe(kind, worker, value, threshold),
        };
        self.alerts.push(alert.clone());
        fired.push(alert);
    }

    /// Snapshot the fold for rendering.
    pub fn status(&self) -> WatchStatus {
        let tasks_total = self.model.len();
        let tasks_done = self.done.len();
        let eta = if tasks_done > 0 && tasks_total > 0 {
            self.makespan * tasks_total as f64 / tasks_done as f64
        } else {
            0.0
        };
        WatchStatus {
            wall: self.wall,
            lambda: self.lambda,
            has_bound: self.lambda > 0.0,
            tasks_total,
            tasks_done,
            running_makespan: self.makespan,
            eta_modelled: eta,
            workers: self
                .workers
                .iter()
                .map(|(w, s)| WorkerWatch {
                    worker: *w,
                    is_gpu: s.is_gpu,
                    jobs: s.jobs,
                    busy_wall: s.busy_wall,
                    busy_modelled: s.busy_virt,
                    est_modelled: s.est_virt,
                    ratio: s.ratio(),
                    queue_depth: s.outstanding.len(),
                    silent_for: (self.wall - s.last_activity_wall).max(0.0),
                    deadline_secs: s.deadline_secs,
                    dead: s.dead,
                })
                .collect(),
            alerts: self.alerts.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dispatch(task: i64, worker: usize) -> Event {
        Event {
            track: Track::Master,
            name: "task_dispatch".to_string(),
            kind: EventKind::Instant,
            wall_start: 0.0,
            wall_dur: 0.0,
            virt_start: None,
            virt_dur: None,
            args: vec![
                ("task".to_string(), task as f64),
                ("worker".to_string(), worker as f64),
                ("seq".to_string(), task as f64),
                ("decision".to_string(), 0.0),
            ],
        }
    }

    fn model(task: i64, p_cpu: f64, p_gpu: f64) -> Event {
        Event {
            track: Track::Master,
            name: "task_model".to_string(),
            kind: EventKind::Instant,
            wall_start: 0.0,
            wall_dur: 0.0,
            virt_start: None,
            virt_dur: None,
            args: vec![
                ("task".to_string(), task as f64),
                ("p_cpu".to_string(), p_cpu),
                ("p_gpu".to_string(), p_gpu),
            ],
        }
    }

    fn job(worker: usize, task: i64, wall: f64, wall_dur: f64, virt_dur: f64) -> Event {
        Event {
            track: Track::Worker(worker),
            name: format!("task-{task}"),
            kind: EventKind::Span,
            wall_start: wall,
            wall_dur,
            virt_start: Some(0.0),
            virt_dur: Some(virt_dur),
            args: vec![("task".to_string(), task as f64)],
        }
    }

    fn fault(name: &str, args: Vec<(String, f64)>, wall: f64) -> Event {
        Event {
            track: Track::Faults,
            name: name.to_string(),
            kind: EventKind::Instant,
            wall_start: wall,
            wall_dur: 0.0,
            virt_start: None,
            virt_dur: None,
            args,
        }
    }

    fn feed(dog: &mut Watchdog, events: &[Event]) -> Vec<Alert> {
        events.iter().flat_map(|e| dog.observe(e)).collect()
    }

    #[test]
    fn healthy_run_fires_nothing() {
        let mut dog = Watchdog::new(WatchConfig::default());
        let fired = feed(
            &mut dog,
            &[
                model(0, 1.0, 0.5),
                model(1, 1.0, 0.5),
                dispatch(0, 0),
                dispatch(1, 0),
                job(0, 0, 0.0, 0.01, 1.0),
                job(0, 1, 0.01, 0.01, 1.0),
            ],
        );
        assert!(fired.is_empty(), "{fired:?}");
        let status = dog.status();
        assert_eq!(status.tasks_done, 2);
        assert_eq!(status.tasks_total, 2);
        assert!((status.workers[0].ratio - 1.0).abs() < 1e-9);
        assert_eq!(status.workers[0].queue_depth, 0);
    }

    #[test]
    fn straggler_fires_once_and_names_the_worker() {
        let mut dog = Watchdog::new(WatchConfig::default());
        let fired = feed(
            &mut dog,
            &[
                model(0, 1.0, 1.0),
                model(1, 1.0, 1.0),
                dispatch(0, 2),
                dispatch(1, 2),
                // Observed modelled time 3× the estimate: a straggler.
                job(2, 0, 0.0, 0.01, 3.0),
                job(2, 1, 0.01, 0.01, 3.0),
            ],
        );
        let stragglers: Vec<&Alert> = fired
            .iter()
            .filter(|a| a.kind == AlertKind::Straggler)
            .collect();
        assert_eq!(stragglers.len(), 1, "fires once, not per job");
        assert_eq!(stragglers[0].worker, Some(2));
        assert!((stragglers[0].value - 3.0).abs() < 1e-9);
        assert!(stragglers[0].message.contains("worker 2"));
    }

    #[test]
    fn bound_at_risk_uses_two_lambda() {
        let mut dog = Watchdog::new(WatchConfig::default());
        dog.observe(&Event {
            track: Track::Scheduler,
            name: "binsearch_done".to_string(),
            kind: EventKind::Instant,
            wall_start: 0.0,
            wall_dur: 0.0,
            virt_start: None,
            virt_dur: None,
            args: vec![("lambda".to_string(), 1.0)],
        });
        // Makespan 1.5 < 0.9 × 2λ = 1.8: quiet.
        assert!(
            feed(&mut dog, &[model(0, 1.0, 1.0), job(0, 0, 0.0, 0.01, 1.5)])
                .iter()
                .all(|a| a.kind != AlertKind::BoundAtRisk)
        );
        // Makespan 1.9 ≥ 1.8: fires, carrying both numbers.
        let mut e = job(0, 1, 0.01, 0.01, 0.4);
        e.virt_start = Some(1.5);
        let fired = dog.observe(&e);
        let bound: Vec<&Alert> = fired
            .iter()
            .filter(|a| a.kind == AlertKind::BoundAtRisk)
            .collect();
        assert_eq!(bound.len(), 1);
        assert!((bound[0].value - 1.9).abs() < 1e-9);
        assert!((bound[0].threshold - 1.8).abs() < 1e-9);
    }

    #[test]
    fn worker_death_and_reopt_map_to_alerts() {
        let mut dog = Watchdog::new(WatchConfig::default());
        let fired = feed(
            &mut dog,
            &[
                fault(
                    "worker_death",
                    vec![("worker".to_string(), 1.0), ("reason".to_string(), 2.0)],
                    0.5,
                ),
                fault(
                    "worker_death",
                    vec![("worker".to_string(), 1.0), ("reason".to_string(), 2.0)],
                    0.6,
                ),
                fault(
                    "reopt_replan",
                    vec![("skew".to_string(), 1.4), ("round".to_string(), 1.0)],
                    0.7,
                ),
            ],
        );
        let kinds: Vec<AlertKind> = fired.iter().map(|a| a.kind).collect();
        assert_eq!(kinds, vec![AlertKind::WorkerDead, AlertKind::ReoptFired]);
        assert_eq!(fired[0].worker, Some(1));
        assert!(dog.status().workers.iter().any(|w| w.dead));
    }

    #[test]
    fn queue_stall_fires_on_silence_and_rearms_on_activity() {
        let cfg = WatchConfig {
            stall_min_secs: 0.1,
            ..WatchConfig::default()
        };
        let mut dog = Watchdog::new(cfg);
        feed(&mut dog, &[model(0, 1.0, 1.0), dispatch(0, 0)]);
        // A later event on another track advances the clock past the
        // silence threshold while worker 0 still owes task 0.
        let tick = Event {
            track: Track::Master,
            name: "merge".to_string(),
            kind: EventKind::Instant,
            wall_start: 0.5,
            wall_dur: 0.0,
            virt_start: None,
            virt_dur: None,
            args: vec![],
        };
        let fired = dog.observe(&tick);
        let stalls: Vec<&Alert> = fired
            .iter()
            .filter(|a| a.kind == AlertKind::QueueStall)
            .collect();
        assert_eq!(stalls.len(), 1);
        assert_eq!(stalls[0].worker, Some(0));
        // No re-fire while still silent.
        let mut tick2 = tick.clone();
        tick2.wall_start = 0.9;
        assert!(dog.observe(&tick2).is_empty());
        // Completion clears the queue and re-arms.
        assert!(dog.observe(&job(0, 0, 1.0, 0.01, 1.0)).is_empty());
        assert_eq!(dog.status().workers[0].queue_depth, 0);
    }

    #[test]
    fn deadline_proximity_prefers_published_deadlines() {
        let mut dog = Watchdog::new(WatchConfig::default());
        feed(
            &mut dog,
            &[
                model(0, 1.0, 1.0),
                dispatch(0, 0),
                Event {
                    track: Track::Master,
                    name: "worker_deadline".to_string(),
                    kind: EventKind::Instant,
                    wall_start: 0.0,
                    wall_dur: 0.0,
                    virt_start: None,
                    virt_dur: None,
                    args: vec![("worker".to_string(), 0.0), ("timeout".to_string(), 1.0)],
                },
            ],
        );
        // Silence 0.5 < 0.8 × 1.0: quiet despite default stall_min 0.25
        // (the published deadline wins over the fallback heuristic).
        let mut tick = Event {
            track: Track::Master,
            name: "merge".to_string(),
            kind: EventKind::Instant,
            wall_start: 0.5,
            wall_dur: 0.0,
            virt_start: None,
            virt_dur: None,
            args: vec![],
        };
        assert!(dog.observe(&tick).is_empty());
        // Silence 0.85 ≥ 0.8: deadline proximity.
        tick.wall_start = 0.85;
        let fired = dog.observe(&tick);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].kind, AlertKind::QueueStall);
    }

    #[test]
    fn alerts_round_trip_through_the_journal() {
        let obs = Obs::enabled();
        let alert = Alert {
            kind: AlertKind::Straggler,
            worker: Some(3),
            wall: 0.0,
            value: 2.5,
            threshold: 2.0,
            message: describe(AlertKind::Straggler, Some(3), 2.5, 2.0),
        };
        record_alert(&obs, &alert);
        let boundless = Alert {
            kind: AlertKind::BoundAtRisk,
            worker: None,
            wall: 0.0,
            value: 1.9,
            threshold: 1.8,
            message: describe(AlertKind::BoundAtRisk, None, 1.9, 1.8),
        };
        record_alert(&obs, &boundless);

        let events = obs.events();
        assert!(events.iter().all(Event::is_alert));
        let back = alerts_from_events(&events);
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].kind, AlertKind::Straggler);
        assert_eq!(back[0].worker, Some(3));
        assert!((back[0].value - 2.5).abs() < 1e-9);
        assert_eq!(back[1].kind, AlertKind::BoundAtRisk);
        assert_eq!(back[1].worker, None);

        // And the metrics registry counted them by kind.
        let snap = obs.metrics().snapshot();
        assert_eq!(
            snap.counter_value("alerts", &[("kind", "straggler")]),
            Some(1.0)
        );
        assert_eq!(
            snap.counter_value("alerts", &[("kind", "bound-at-risk")]),
            Some(1.0)
        );
    }

    #[test]
    fn watchdog_ignores_its_own_alerts() {
        let mut dog = Watchdog::new(WatchConfig::default());
        let alert_event = Event {
            track: Track::Faults,
            name: "alert_straggler".to_string(),
            kind: EventKind::Instant,
            wall_start: 0.0,
            wall_dur: 0.0,
            virt_start: None,
            virt_dur: None,
            args: vec![("worker".to_string(), 0.0)],
        };
        assert!(dog.observe(&alert_event).is_empty());
        assert!(dog.status().alerts.is_empty());
    }

    #[test]
    fn kind_labels_round_trip() {
        for kind in AlertKind::ALL {
            assert_eq!(AlertKind::from_label(kind.label()), Some(kind));
            assert_eq!(AlertKind::from_label(kind.event_name()), Some(kind));
        }
        assert_eq!(AlertKind::from_label("nonsense"), None);
    }
}
