//! CUPTI-style profiling: fold a recorded event stream into a unified
//! [`Profile`].
//!
//! The tracing layer (PR 1) answers *when* things ran; the metrics
//! layer (PR 3) answers *how often and how long on average*. This
//! module answers *where the time went inside a task*: per-job host
//! phases (profile build, DP inner loop, traceback) and per-kernel
//! device phases (launch latency, compute, H2D/D2H transfer), folded
//! into collapsed stacks with **two weights per stack** — wall-clock
//! seconds and modelled-clock seconds — so one profile serves both the
//! "what did this host really do" and the "what does the paper's
//! platform model say" questions.
//!
//! ## Stack taxonomy
//!
//! ```text
//! worker:W;task-T                      ← self = task minus its phases
//! worker:W;task-T;profile_build        ← striped query-profile setup
//! worker:W;task-T;dp_inner             ← the DP loop proper
//! worker:W;task-T;traceback            ← alignment reconstruction (0 in
//!                                        score-only searches, kept so
//!                                        the taxonomy is stable)
//! device:D;h2d_transfer                ← PCIe uploads
//! device:D;d2h_transfer                ← score readback (overlapped,
//!                                        not on the device clock)
//! device:D;kernel                      ← self = kernel minus phases
//! device:D;kernel;launch               ← fixed dispatch latency
//! device:D;kernel;compute              ← warp-padded DP compute
//! ```
//!
//! Leaf weights are *self* times: a parent's self time is its span
//! minus its children (clamped at zero), so summing every stack that
//! starts with `worker:W` reproduces worker W's busy time exactly —
//! the same number `analysis::analyze_events` reports as `busy_wall` /
//! `busy_modelled`. That identity is what lets the CI smoke test
//! reconcile `swdual profile` against `swdual analyze` within 1%.
//!
//! Device rows are a second *view* of the same execution (a GPU
//! worker's task time is its kernels' time), so device stacks are kept
//! under their own roots and are deliberately **not** added to the
//! worker totals.
//!
//! The roofline side ([`RooflineReport`]) folds the device events into
//! achieved-vs-modelled GCUPS per device plus a transfer-bound vs
//! compute-bound verdict per query-length bucket, in the style of the
//! SWAPHI / Knights-Landing SW papers the ISSUE cites.

use crate::{Event, EventKind, Obs, Track};
use serde::Serialize;
use std::collections::BTreeMap;

/// Which clock a flamegraph export should weight stacks by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileClock {
    /// Real elapsed seconds on this host.
    Wall,
    /// Virtual seconds from the platform's rate models.
    Modelled,
}

/// One collapsed stack with dual weights (self time, seconds).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StackWeight {
    /// Frames from root to leaf, e.g. `["worker:0", "task-3", "dp_inner"]`.
    pub frames: Vec<String>,
    /// Self seconds on the wall clock.
    pub wall: f64,
    /// Self seconds on the modelled clock.
    pub modelled: f64,
}

/// Per-phase totals inside one worker.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseTotal {
    /// Phase name (`profile_build`, `dp_inner`, `traceback`, or `task`
    /// for unattributed self time).
    pub name: String,
    /// Wall seconds across all of the worker's jobs.
    pub wall: f64,
    /// Modelled seconds across all of the worker's jobs.
    pub modelled: f64,
}

/// One worker's profile totals. `wall_total`/`modelled_total` equal the
/// auditor's `busy_wall`/`busy_modelled` for the same journal.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerProfile {
    /// Worker id.
    pub worker: usize,
    /// Jobs profiled.
    pub tasks: usize,
    /// Total wall seconds attributed to this worker's stacks.
    pub wall_total: f64,
    /// Total modelled seconds attributed to this worker's stacks.
    pub modelled_total: f64,
    /// Latest modelled completion on this worker (start + duration of
    /// its last job). Equals `modelled_total` when jobs are packed
    /// back-to-back from 0, as the runtime's workers are.
    pub modelled_end: f64,
    /// Phase totals, sorted by name.
    pub phases: Vec<PhaseTotal>,
}

/// One busy/idle segment on a device's virtual clock.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TimelineSegment {
    /// Segment start, seconds on the device clock.
    pub start: f64,
    /// Segment end, seconds on the device clock.
    pub end: f64,
    /// True when the device was executing a kernel or a transfer.
    pub busy: bool,
}

/// Per-query-length-bucket kernel accounting and its verdict.
#[derive(Debug, Clone, Serialize)]
pub struct LengthBucket {
    /// Inclusive lower query length of the bucket.
    pub min_len: usize,
    /// Exclusive upper query length (`usize::MAX` for the last bucket).
    pub max_len: usize,
    /// Kernels that fell in this bucket.
    pub kernels: usize,
    /// Mean modelled compute seconds per kernel (launch excluded).
    pub mean_compute_seconds: f64,
    /// Mean transfer seconds amortized over every kernel of the device.
    pub amortized_transfer_seconds: f64,
    /// Achieved GCUPS over useful cells in this bucket.
    pub achieved_gcups: f64,
    /// `transfer-bound` when the amortized transfer share exceeds the
    /// mean compute time, else `compute-bound`.
    pub verdict: String,
}

/// Bytes-moved vs cells-computed roofline accumulator for one device.
#[derive(Debug, Clone, Serialize)]
pub struct DeviceProfile {
    /// Device id (the worker id that drives it).
    pub device: usize,
    /// Kernels profiled.
    pub kernels: usize,
    /// H2D transfers profiled.
    pub transfers: usize,
    /// Modelled kernel seconds (launch + compute).
    pub kernel_seconds: f64,
    /// Modelled launch-latency seconds (part of `kernel_seconds`).
    pub launch_seconds: f64,
    /// Modelled H2D transfer seconds.
    pub transfer_seconds: f64,
    /// Kernel + transfer seconds — the device's busy time.
    pub busy_seconds: f64,
    /// Idle seconds inside the device's active window (gaps between
    /// spans on its virtual clock).
    pub idle_seconds: f64,
    /// Bytes moved host→device.
    pub bytes_h2d: f64,
    /// Bytes moved device→host (score readback; overlapped).
    pub bytes_d2h: f64,
    /// Query×subject cells actually compared.
    pub useful_cells: f64,
    /// Cells charged including warp padding.
    pub padded_cells: f64,
    /// Peak GCUPS from the `device_spec` instant (0 when the journal
    /// predates spec instants).
    pub peak_gcups: f64,
    /// PCIe bandwidth from the `device_spec` instant (0 when unknown).
    pub pcie_bytes_per_sec: f64,
    /// Busy/idle segments on the device clock, in time order.
    pub segments: Vec<TimelineSegment>,
    /// Kernel accounting per query-length bucket.
    pub buckets: Vec<LengthBucket>,
}

impl DeviceProfile {
    /// Fraction of charged cells that were useful.
    pub fn warp_efficiency(&self) -> f64 {
        if self.padded_cells > 0.0 {
            self.useful_cells / self.padded_cells
        } else {
            1.0
        }
    }

    /// Achieved throughput over useful cells, GCUPS on the modelled
    /// clock (0 when no kernel time).
    pub fn achieved_gcups(&self) -> f64 {
        if self.kernel_seconds > 0.0 {
            self.useful_cells / self.kernel_seconds / 1e9
        } else {
            0.0
        }
    }

    /// Modelled throughput over *charged* (padded) cells — what the
    /// rate model says the silicon sustained.
    pub fn modelled_gcups(&self) -> f64 {
        if self.kernel_seconds > 0.0 {
            self.padded_cells / self.kernel_seconds / 1e9
        } else {
            0.0
        }
    }

    /// Arithmetic intensity: useful cells per byte moved over PCIe.
    pub fn cells_per_byte(&self) -> f64 {
        let bytes = self.bytes_h2d + self.bytes_d2h;
        if bytes > 0.0 {
            self.useful_cells / bytes
        } else {
            0.0
        }
    }

    /// Roofline attainable GCUPS: `min(peak, intensity · bandwidth)`.
    /// 0 when the journal carries no device spec.
    pub fn attainable_gcups(&self) -> f64 {
        if self.peak_gcups <= 0.0 {
            return 0.0;
        }
        if self.pcie_bytes_per_sec <= 0.0 {
            return self.peak_gcups;
        }
        let bandwidth_roof = self.cells_per_byte() * self.pcie_bytes_per_sec / 1e9;
        self.peak_gcups.min(bandwidth_roof)
    }

    /// Device-level verdict: which roof the device sits under.
    pub fn verdict(&self) -> &'static str {
        if self.peak_gcups <= 0.0 {
            "unknown (no device_spec in journal)"
        } else if self.attainable_gcups() < self.peak_gcups {
            "transfer-bound"
        } else {
            "compute-bound"
        }
    }
}

/// The unified profile: collapsed stacks plus worker and device folds.
#[derive(Debug, Clone, Serialize)]
pub struct Profile {
    /// Every distinct stack with its dual self weights, sorted by
    /// frames for stable output.
    pub stacks: Vec<StackWeight>,
    /// Per-worker totals, ascending by worker id.
    pub workers: Vec<WorkerProfile>,
    /// Per-device roofline accumulators, ascending by device id.
    pub devices: Vec<DeviceProfile>,
    /// Sum of worker wall totals (the attributed wall busy time).
    pub wall_total: f64,
    /// Sum of worker modelled totals.
    pub modelled_total: f64,
    /// Latest modelled job completion over all workers — the same
    /// number `analysis` reports as `modelled_makespan`.
    pub modelled_makespan: f64,
}

/// Worker phase-span names the fold understands (recorded by the
/// runtime workers when profiling is on).
const WORKER_PHASES: [&str; 3] = ["profile_build", "dp_inner", "traceback"];

fn arg(event: &Event, key: &str) -> Option<f64> {
    event.args.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

fn finite(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        0.0
    }
}

/// Merge span intervals into alternating busy/idle segments.
fn fold_segments(mut intervals: Vec<(f64, f64)>) -> (Vec<TimelineSegment>, f64) {
    intervals.retain(|(s, e)| e > s);
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut segments: Vec<TimelineSegment> = Vec::new();
    let mut idle = 0.0;
    for (start, end) in intervals {
        match segments.last_mut() {
            Some(last) if start <= last.end + 1e-12 && last.busy => {
                last.end = last.end.max(end);
            }
            Some(last) => {
                let gap_start = last.end;
                if start > gap_start {
                    idle += start - gap_start;
                    segments.push(TimelineSegment {
                        start: gap_start,
                        end: start,
                        busy: false,
                    });
                }
                segments.push(TimelineSegment {
                    start: start.max(gap_start),
                    end,
                    busy: true,
                });
            }
            None => segments.push(TimelineSegment {
                start,
                end,
                busy: true,
            }),
        }
    }
    (segments, idle)
}

impl Profile {
    /// Fold a live recorder.
    pub fn from_obs(obs: &Obs) -> Profile {
        Profile::from_events(&obs.events())
    }

    /// Fold an event stream (e.g. one parsed back from a journal with
    /// [`analysis::parse_journal`](crate::analysis::parse_journal)).
    pub fn from_events(events: &[Event]) -> Profile {
        // (worker, task) → (wall, modelled, modelled_end)
        let mut tasks: BTreeMap<(usize, i64), (f64, f64, f64)> = BTreeMap::new();
        // (worker, task, phase) → (wall, modelled)
        let mut phases: BTreeMap<(usize, i64, String), (f64, f64)> = BTreeMap::new();

        struct DevAcc {
            kernels: usize,
            transfers: usize,
            kernel_wall: f64,
            kernel_seconds: f64,
            launch_wall: f64,
            launch_seconds: f64,
            compute_wall: f64,
            compute_seconds: f64,
            transfer_wall: f64,
            transfer_seconds: f64,
            d2h_wall: f64,
            d2h_seconds: f64,
            bytes_h2d: f64,
            bytes_d2h: f64,
            useful_cells: f64,
            padded_cells: f64,
            peak_gcups: f64,
            pcie_bytes_per_sec: f64,
            intervals: Vec<(f64, f64)>,
            // query_len → (kernels, compute seconds, useful cells)
            by_len: Vec<(usize, f64, f64)>,
        }
        let mut devices: BTreeMap<usize, DevAcc> = BTreeMap::new();
        fn dev(devices: &mut BTreeMap<usize, DevAcc>, d: usize) -> &mut DevAcc {
            devices.entry(d).or_insert(DevAcc {
                kernels: 0,
                transfers: 0,
                kernel_wall: 0.0,
                kernel_seconds: 0.0,
                launch_wall: 0.0,
                launch_seconds: 0.0,
                compute_wall: 0.0,
                compute_seconds: 0.0,
                transfer_wall: 0.0,
                transfer_seconds: 0.0,
                d2h_wall: 0.0,
                d2h_seconds: 0.0,
                bytes_h2d: 0.0,
                bytes_d2h: 0.0,
                useful_cells: 0.0,
                padded_cells: 0.0,
                peak_gcups: 0.0,
                pcie_bytes_per_sec: 0.0,
                intervals: Vec::new(),
                by_len: Vec::new(),
            })
        }

        let task_of = |event: &Event| -> i64 {
            arg(event, "task")
                .map(|t| t as i64)
                .or_else(|| {
                    event
                        .name
                        .strip_prefix("task-")
                        .and_then(|s| s.parse().ok())
                })
                .unwrap_or(-1)
        };

        for event in events {
            match event.track {
                Track::Worker(w) if event.kind == EventKind::Span => {
                    let wall = finite(event.wall_dur).max(0.0);
                    let virt = finite(event.virt_dur.unwrap_or(0.0)).max(0.0);
                    let phase = WORKER_PHASES
                        .iter()
                        .find(|p| event.name == format!("phase_{p}"));
                    if let Some(phase) = phase {
                        let e = phases
                            .entry((w, task_of(event), phase.to_string()))
                            .or_insert((0.0, 0.0));
                        e.0 += wall;
                        e.1 += virt;
                    } else {
                        let end = finite(event.virt_start.unwrap_or(0.0)) + virt;
                        let e = tasks.entry((w, task_of(event))).or_insert((0.0, 0.0, 0.0));
                        e.0 += wall;
                        e.1 += virt;
                        e.2 = e.2.max(end);
                    }
                }
                Track::Device(d) if event.kind == EventKind::Span => {
                    let wall = finite(event.wall_dur).max(0.0);
                    let virt = finite(event.virt_dur.unwrap_or(0.0)).max(0.0);
                    let virt_start = finite(event.virt_start.unwrap_or(0.0));
                    let a = dev(&mut devices, d);
                    match event.name.as_str() {
                        "kernel" => {
                            a.kernels += 1;
                            a.kernel_wall += wall;
                            a.kernel_seconds += virt;
                            a.useful_cells += arg(event, "useful_cells").unwrap_or(0.0);
                            a.padded_cells += arg(event, "padded_cells").unwrap_or(0.0);
                            a.intervals.push((virt_start, virt_start + virt));
                            let len = arg(event, "query_len").unwrap_or(0.0) as usize;
                            a.by_len
                                .push((len, virt, arg(event, "useful_cells").unwrap_or(0.0)));
                        }
                        "kernel_launch" => {
                            a.launch_wall += wall;
                            a.launch_seconds += virt;
                        }
                        "kernel_compute" => {
                            a.compute_wall += wall;
                            a.compute_seconds += virt;
                        }
                        "h2d_transfer" => {
                            a.transfers += 1;
                            a.transfer_wall += wall;
                            a.transfer_seconds += virt;
                            a.bytes_h2d += arg(event, "bytes").unwrap_or(0.0);
                            a.intervals.push((virt_start, virt_start + virt));
                        }
                        "d2h_transfer" => {
                            a.d2h_wall += wall;
                            a.d2h_seconds += virt;
                            a.bytes_d2h += arg(event, "bytes").unwrap_or(0.0);
                        }
                        _ => {}
                    }
                }
                Track::Device(d) if event.name == "device_spec" => {
                    let a = dev(&mut devices, d);
                    a.peak_gcups = arg(event, "peak_gcups").unwrap_or(0.0);
                    a.pcie_bytes_per_sec = arg(event, "pcie_bytes_per_sec").unwrap_or(0.0);
                }
                _ => {}
            }
        }

        // Build stacks. Worker: task self = task − Σ its phases.
        let mut stacks: Vec<StackWeight> = Vec::new();
        let mut worker_fold: BTreeMap<usize, WorkerProfile> = BTreeMap::new();
        for (&(w, task), &(wall, modelled, end)) in &tasks {
            let task_frame = if task >= 0 {
                format!("task-{task}")
            } else {
                "task".to_string()
            };
            let mut child_wall = 0.0;
            let mut child_virt = 0.0;
            for phase in WORKER_PHASES {
                if let Some(&(pw, pv)) = phases.get(&(w, task, phase.to_string())) {
                    child_wall += pw;
                    child_virt += pv;
                    stacks.push(StackWeight {
                        frames: vec![format!("worker:{w}"), task_frame.clone(), phase.to_string()],
                        wall: pw,
                        modelled: pv,
                    });
                }
            }
            // Phases may slightly over- or under-shoot the parent from
            // separate clock reads; the parent keeps the (clamped)
            // remainder so root totals always equal the span sums.
            stacks.push(StackWeight {
                frames: vec![format!("worker:{w}"), task_frame],
                wall: (wall - child_wall).max(0.0),
                modelled: (modelled - child_virt).max(0.0),
            });
            let wp = worker_fold.entry(w).or_insert(WorkerProfile {
                worker: w,
                tasks: 0,
                wall_total: 0.0,
                modelled_total: 0.0,
                modelled_end: 0.0,
                phases: Vec::new(),
            });
            wp.tasks += 1;
            wp.wall_total += wall.max(child_wall);
            wp.modelled_total += modelled.max(child_virt);
            wp.modelled_end = wp.modelled_end.max(end);
        }
        // Per-worker phase totals.
        for (&(w, _, ref phase), &(pw, pv)) in &phases {
            if let Some(wp) = worker_fold.get_mut(&w) {
                match wp.phases.iter_mut().find(|p| &p.name == phase) {
                    Some(p) => {
                        p.wall += pw;
                        p.modelled += pv;
                    }
                    None => wp.phases.push(PhaseTotal {
                        name: phase.clone(),
                        wall: pw,
                        modelled: pv,
                    }),
                }
            }
        }
        for wp in worker_fold.values_mut() {
            wp.phases.sort_by(|a, b| a.name.cmp(&b.name));
        }

        // Device stacks + roofline fold.
        let mut device_fold: Vec<DeviceProfile> = Vec::new();
        for (&d, a) in &devices {
            let root = format!("device:{d}");
            if a.transfers > 0 {
                stacks.push(StackWeight {
                    frames: vec![root.clone(), "h2d_transfer".to_string()],
                    wall: a.transfer_wall,
                    modelled: a.transfer_seconds,
                });
            }
            if a.d2h_seconds > 0.0 || a.d2h_wall > 0.0 {
                stacks.push(StackWeight {
                    frames: vec![root.clone(), "d2h_transfer".to_string()],
                    wall: a.d2h_wall,
                    modelled: a.d2h_seconds,
                });
            }
            if a.kernels > 0 {
                let child_wall = a.launch_wall + a.compute_wall;
                let child_virt = a.launch_seconds + a.compute_seconds;
                if a.launch_seconds > 0.0 || a.launch_wall > 0.0 {
                    stacks.push(StackWeight {
                        frames: vec![root.clone(), "kernel".to_string(), "launch".to_string()],
                        wall: a.launch_wall,
                        modelled: a.launch_seconds,
                    });
                }
                if a.compute_seconds > 0.0 || a.compute_wall > 0.0 {
                    stacks.push(StackWeight {
                        frames: vec![root.clone(), "kernel".to_string(), "compute".to_string()],
                        wall: a.compute_wall,
                        modelled: a.compute_seconds,
                    });
                }
                stacks.push(StackWeight {
                    frames: vec![root.clone(), "kernel".to_string()],
                    wall: (a.kernel_wall - child_wall).max(0.0),
                    modelled: (a.kernel_seconds - child_virt).max(0.0),
                });
            }

            let (segments, idle_seconds) = fold_segments(a.intervals.clone());
            let amortized_transfer = if a.kernels > 0 {
                a.transfer_seconds / a.kernels as f64
            } else {
                0.0
            };
            // Power-of-two query-length buckets: 0–127, 128–255, … .
            let mut buckets: BTreeMap<usize, (usize, f64, f64)> = BTreeMap::new();
            for &(len, secs, cells) in &a.by_len {
                let lo = if len < 128 {
                    0
                } else {
                    let mut lo = 128usize;
                    while lo * 2 <= len {
                        lo *= 2;
                    }
                    lo
                };
                let b = buckets.entry(lo).or_insert((0, 0.0, 0.0));
                b.0 += 1;
                b.1 += secs;
                b.2 += cells;
            }
            let launch_per_kernel = if a.kernels > 0 {
                a.launch_seconds / a.kernels as f64
            } else {
                0.0
            };
            let buckets: Vec<LengthBucket> = buckets
                .iter()
                .map(|(&lo, &(n, secs, cells))| {
                    let mean_compute = (secs / n as f64 - launch_per_kernel).max(0.0);
                    LengthBucket {
                        min_len: lo,
                        max_len: if lo == 0 { 128 } else { lo * 2 },
                        kernels: n,
                        mean_compute_seconds: mean_compute,
                        amortized_transfer_seconds: amortized_transfer,
                        achieved_gcups: if secs > 0.0 { cells / secs / 1e9 } else { 0.0 },
                        verdict: if amortized_transfer > mean_compute {
                            "transfer-bound".to_string()
                        } else {
                            "compute-bound".to_string()
                        },
                    }
                })
                .collect();

            device_fold.push(DeviceProfile {
                device: d,
                kernels: a.kernels,
                transfers: a.transfers,
                kernel_seconds: a.kernel_seconds,
                launch_seconds: a.launch_seconds,
                transfer_seconds: a.transfer_seconds,
                busy_seconds: a.kernel_seconds + a.transfer_seconds,
                idle_seconds,
                bytes_h2d: a.bytes_h2d,
                bytes_d2h: a.bytes_d2h,
                useful_cells: a.useful_cells,
                padded_cells: a.padded_cells,
                peak_gcups: a.peak_gcups,
                pcie_bytes_per_sec: a.pcie_bytes_per_sec,
                segments,
                buckets,
            });
        }

        stacks.retain(|s| s.wall > 0.0 || s.modelled > 0.0);
        stacks.sort_by(|a, b| a.frames.cmp(&b.frames));

        let workers: Vec<WorkerProfile> = worker_fold.into_values().collect();
        let wall_total = workers.iter().map(|w| w.wall_total).sum();
        let modelled_total = workers.iter().map(|w| w.modelled_total).sum();
        let modelled_makespan = workers.iter().map(|w| w.modelled_end).fold(0.0, f64::max);
        Profile {
            stacks,
            workers,
            devices: device_fold,
            wall_total,
            modelled_total,
            modelled_makespan,
        }
    }

    /// Total self-weight of every stack rooted at `frame`, on `clock`.
    /// `profile.root_total("worker:0", Wall)` equals the auditor's
    /// `busy_wall` for worker 0.
    pub fn root_total(&self, frame: &str, clock: ProfileClock) -> f64 {
        self.stacks
            .iter()
            .filter(|s| s.frames.first().map(String::as_str) == Some(frame))
            .map(|s| match clock {
                ProfileClock::Wall => s.wall,
                ProfileClock::Modelled => s.modelled,
            })
            .sum()
    }

    /// The roofline view of this profile.
    pub fn roofline(&self) -> RooflineReport {
        RooflineReport {
            devices: self.devices.clone(),
            modelled_makespan: self.modelled_makespan,
            wall_busy_total: self.wall_total,
            modelled_busy_total: self.modelled_total,
        }
    }

    /// Pretty-printed JSON of the whole profile.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serialises")
    }
}

/// Achieved vs modelled GCUPS per device with bound verdicts,
/// reconciled against the makespan the auditor reports.
#[derive(Debug, Clone, Serialize)]
pub struct RooflineReport {
    /// Per-device accumulators (shared with [`Profile::devices`]).
    pub devices: Vec<DeviceProfile>,
    /// Modelled makespan derived from the same events (for
    /// reconciliation against `swdual analyze`).
    pub modelled_makespan: f64,
    /// Total attributed wall busy time over workers.
    pub wall_busy_total: f64,
    /// Total attributed modelled busy time over workers.
    pub modelled_busy_total: f64,
}

impl RooflineReport {
    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("roofline serialises")
    }

    /// Human-readable rendering for terminals.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line("roofline report".to_string());
        line(format!(
            "  attributed busy time   {:.6} s wall · {:.6} s modelled · makespan {:.6} s modelled",
            self.wall_busy_total, self.modelled_busy_total, self.modelled_makespan
        ));
        if self.devices.is_empty() {
            line("  no device activity in this journal (CPU-only run?)".to_string());
            return out;
        }
        for d in &self.devices {
            line(format!("  device {}:", d.device));
            line(format!(
                "    kernels              {} ({:.6} s, of which launch {:.6} s)",
                d.kernels, d.kernel_seconds, d.launch_seconds
            ));
            line(format!(
                "    transfers            {} h2d ({:.6} s, {:.0} bytes) · {:.0} bytes d2h",
                d.transfers, d.transfer_seconds, d.bytes_h2d, d.bytes_d2h
            ));
            line(format!(
                "    busy / idle          {:.6} s busy · {:.6} s idle ({} segments)",
                d.busy_seconds,
                d.idle_seconds,
                d.segments.len()
            ));
            line(format!(
                "    throughput           achieved {:.3} GCUPS · modelled {:.3} GCUPS \
                 · peak {:.3} GCUPS",
                d.achieved_gcups(),
                d.modelled_gcups(),
                d.peak_gcups
            ));
            line(format!(
                "    roofline             {:.3} cells/byte · attainable {:.3} GCUPS · {} \
                 · warp efficiency {:.1}%",
                d.cells_per_byte(),
                d.attainable_gcups(),
                d.verdict(),
                100.0 * d.warp_efficiency()
            ));
            for b in &d.buckets {
                line(format!(
                    "    query len [{:>5}, {:>5})  {:>4} kernels · compute {:.6} s \
                     · amortized transfer {:.6} s · {:.3} GCUPS · {}",
                    b.min_len,
                    b.max_len,
                    b.kernels,
                    b.mean_compute_seconds,
                    b.amortized_transfer_seconds,
                    b.achieved_gcups,
                    b.verdict
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built profiled run: one CPU worker with phase spans, one
    /// device with kernel phases, transfers and a spec instant.
    fn sample_events() -> Vec<Event> {
        let obs = Obs::enabled();
        obs.set_profiling(true);
        // Worker 0, task 0: 1.0 s wall / 2.0 s modelled, split into
        // phases 0.25/0.7 wall (self 0.05) and 0.5/1.4 modelled.
        obs.span(
            Track::Worker(0),
            "task-0",
            0.0,
            1.0,
            Some((0.0, 2.0)),
            &[("task", 0.0), ("cells", 1e6)],
        );
        obs.span(
            Track::Worker(0),
            "phase_profile_build",
            0.0,
            0.25,
            Some((0.0, 0.5)),
            &[("task", 0.0)],
        );
        obs.span(
            Track::Worker(0),
            "phase_dp_inner",
            0.25,
            0.7,
            Some((0.5, 1.4)),
            &[("task", 0.0)],
        );
        // Device 1: spec, one transfer, one kernel split into phases.
        obs.instant(
            Track::Device(1),
            "device_spec",
            &[
                ("peak_gcups", 10.0),
                ("pcie_bytes_per_sec", 1.0e9),
                ("kernel_launch_latency", 0.1),
            ],
        );
        obs.span(
            Track::Device(1),
            "h2d_transfer",
            0.0,
            0.01,
            Some((0.0, 0.5)),
            &[("bytes", 5.0e8)],
        );
        obs.span(
            Track::Device(1),
            "kernel",
            0.01,
            0.02,
            Some((0.5, 1.0)),
            &[
                ("useful_cells", 4.0e9),
                ("padded_cells", 5.0e9),
                ("query_len", 300.0),
            ],
        );
        obs.span(
            Track::Device(1),
            "kernel_launch",
            0.01,
            0.0,
            Some((0.5, 0.1)),
            &[],
        );
        obs.span(
            Track::Device(1),
            "kernel_compute",
            0.01,
            0.02,
            Some((0.6, 0.9)),
            &[],
        );
        // GPU worker's own task span (device work seen as a job).
        obs.span(
            Track::Worker(1),
            "task-1",
            0.0,
            0.03,
            Some((0.0, 1.5)),
            &[("task", 1.0)],
        );
        obs.events()
    }

    #[test]
    fn worker_root_totals_equal_task_spans() {
        let p = Profile::from_events(&sample_events());
        assert!((p.root_total("worker:0", ProfileClock::Wall) - 1.0).abs() < 1e-12);
        assert!((p.root_total("worker:0", ProfileClock::Modelled) - 2.0).abs() < 1e-12);
        assert!((p.root_total("worker:1", ProfileClock::Modelled) - 1.5).abs() < 1e-12);
        // Root totals agree with the auditor on the same events.
        let audit = crate::analysis::analyze_events(&sample_events());
        for w in &audit.workers {
            let worker = format!("worker:{}", w.worker);
            assert!((p.root_total(&worker, ProfileClock::Wall) - w.busy_wall).abs() < 1e-9);
            assert!((p.root_total(&worker, ProfileClock::Modelled) - w.busy_modelled).abs() < 1e-9);
        }
        assert!((p.modelled_makespan - audit.modelled_makespan).abs() < 1e-9);
    }

    #[test]
    fn phase_stacks_carry_self_times() {
        let p = Profile::from_events(&sample_events());
        let stack = |frames: &[&str]| {
            p.stacks
                .iter()
                .find(|s| s.frames == frames)
                .unwrap_or_else(|| panic!("stack {frames:?} missing"))
        };
        assert!((stack(&["worker:0", "task-0", "dp_inner"]).wall - 0.7).abs() < 1e-12);
        assert!((stack(&["worker:0", "task-0", "profile_build"]).modelled - 0.5).abs() < 1e-12);
        // Parent self = span − children.
        let parent = stack(&["worker:0", "task-0"]);
        assert!((parent.wall - 0.05).abs() < 1e-12);
        assert!((parent.modelled - 0.1).abs() < 1e-12);
        // Device kernel self = kernel − (launch + compute) = 0 here,
        // and zero-weight stacks are dropped from the fold.
        assert!(
            p.stacks.iter().all(|s| s.frames != ["device:1", "kernel"]),
            "zero-self kernel stack must be dropped"
        );
        assert!((stack(&["device:1", "kernel", "launch"]).modelled - 0.1).abs() < 1e-12);
        assert!((stack(&["device:1", "kernel", "compute"]).modelled - 0.9).abs() < 1e-12);
    }

    #[test]
    fn roofline_folds_bytes_and_cells() {
        let p = Profile::from_events(&sample_events());
        assert_eq!(p.devices.len(), 1);
        let d = &p.devices[0];
        assert_eq!(d.kernels, 1);
        assert_eq!(d.transfers, 1);
        assert!((d.bytes_h2d - 5.0e8).abs() < 1.0);
        assert!((d.useful_cells - 4.0e9).abs() < 1.0);
        assert!((d.warp_efficiency() - 0.8).abs() < 1e-12);
        // 4e9 cells / 1.0 s = 4 GCUPS achieved.
        assert!((d.achieved_gcups() - 4.0).abs() < 1e-9);
        assert_eq!(d.peak_gcups, 10.0);
        // 8 cells/byte · 1e9 B/s = 8 GCUPS < 10 peak → transfer-bound.
        assert!((d.cells_per_byte() - 8.0).abs() < 1e-9);
        assert!((d.attainable_gcups() - 8.0).abs() < 1e-9);
        assert_eq!(d.verdict(), "transfer-bound");
        // Length bucket 256..512 holds the 300-residue kernel.
        assert_eq!(d.buckets.len(), 1);
        assert_eq!(d.buckets[0].min_len, 256);
        assert_eq!(d.buckets[0].max_len, 512);
        assert_eq!(d.buckets[0].kernels, 1);
    }

    #[test]
    fn segments_alternate_busy_idle() {
        let (segments, idle) = fold_segments(vec![(0.0, 1.0), (1.5, 2.0), (0.5, 1.2)]);
        assert_eq!(segments.len(), 3);
        assert!(segments[0].busy && !segments[1].busy && segments[2].busy);
        assert!((segments[0].end - 1.2).abs() < 1e-12);
        assert!((idle - 0.3).abs() < 1e-12);
    }

    #[test]
    fn empty_events_yield_an_empty_profile() {
        let p = Profile::from_events(&[]);
        assert!(p.stacks.is_empty());
        assert!(p.workers.is_empty());
        assert!(p.devices.is_empty());
        assert_eq!(p.modelled_makespan, 0.0);
        let text = p.roofline().to_text();
        assert!(text.contains("no device activity"));
        assert!(!text.contains("NaN") && !text.contains("inf"));
        assert!(p.to_json().contains("\"stacks\""));
    }

    #[test]
    fn unprofiled_journal_still_folds_task_level_stacks() {
        // Without phase spans (profiling off), tasks become leaves.
        let obs = Obs::enabled();
        obs.span(
            Track::Worker(2),
            "task-7",
            0.0,
            0.5,
            Some((0.0, 1.0)),
            &[("task", 7.0)],
        );
        let p = Profile::from_obs(&obs);
        assert_eq!(p.stacks.len(), 1);
        assert_eq!(p.stacks[0].frames, vec!["worker:2", "task-7"]);
        assert!((p.root_total("worker:2", ProfileClock::Modelled) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn roofline_text_never_prints_nan() {
        let p = Profile::from_events(&sample_events());
        let text = p.roofline().to_text();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        assert!(text.contains("transfer-bound"));
        assert!(text.contains("device 1:"));
    }
}
