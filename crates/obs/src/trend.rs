//! Bench trend ledger: stamped bench results that `swdual diff --bench`
//! can compare across runs.
//!
//! Every bench run (`cargo bench -p swdual-bench`) appends one
//! [`TrendEntry`] per bench to `BENCH_trend.json` at the workspace
//! root. The ledger keeps the full history, so a PR can show its
//! before/after and CI can gate on the last two entries of a bench.
//! Bench numbers are wall-clock medians, so trend diffs always use the
//! relative [`Tolerance::Wall`](crate::diff::Tolerance::Wall) class —
//! there is no exact lane here.

use crate::diff::{classify, DiffOptions, DiffReport, MetricDiff, Tolerance};
use serde::{Deserialize, Serialize};

/// Schema tag of the ledger file.
pub const TREND_SCHEMA: &str = "swdual-trend/1";

/// One named number inside an entry (named struct, not a tuple, so the
/// ledger deserializes through the vendored serde shim).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendMetric {
    /// Metric name, e.g. `per_job_enabled`.
    pub name: String,
    /// Measured value.
    pub value: f64,
}

/// One bench run's results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendEntry {
    /// Bench name, e.g. `obs_overhead`.
    pub bench: String,
    /// Seconds since the Unix epoch when the bench ran.
    pub unix_seconds: f64,
    /// Unit of every metric value (e.g. `ns_per_op`).
    pub unit: String,
    /// The measured numbers.
    pub metrics: Vec<TrendMetric>,
}

impl TrendEntry {
    /// Build an entry from `(name, value)` pairs.
    pub fn new(bench: &str, unix_seconds: f64, unit: &str, metrics: &[(&str, f64)]) -> TrendEntry {
        TrendEntry {
            bench: bench.to_string(),
            unix_seconds,
            unit: unit.to_string(),
            metrics: metrics
                .iter()
                .map(|(name, value)| TrendMetric {
                    name: name.to_string(),
                    value: *value,
                })
                .collect(),
        }
    }
}

/// The append-only ledger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrendLedger {
    /// Schema tag ([`TREND_SCHEMA`]).
    pub schema: String,
    /// Entries in append order (oldest first).
    pub entries: Vec<TrendEntry>,
}

impl Default for TrendLedger {
    fn default() -> Self {
        Self::new()
    }
}

impl TrendLedger {
    /// An empty ledger.
    pub fn new() -> TrendLedger {
        TrendLedger {
            schema: TREND_SCHEMA.to_string(),
            entries: Vec::new(),
        }
    }

    /// Parse a ledger, validating its schema tag.
    pub fn parse(text: &str) -> Result<TrendLedger, String> {
        let ledger: TrendLedger =
            serde_json::from_str(text).map_err(|e| format!("trend ledger: {e}"))?;
        if ledger.schema != TREND_SCHEMA {
            return Err(format!(
                "trend schema \"{}\" is not supported (this build reads \"{TREND_SCHEMA}\")",
                ledger.schema
            ));
        }
        Ok(ledger)
    }

    /// Read a ledger from disk; a missing file is an empty ledger (so
    /// the first bench run bootstraps it), any other error is reported.
    pub fn load(path: &std::path::Path) -> Result<TrendLedger, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Self::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(TrendLedger::new()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trend ledger serialises")
    }

    /// Append an entry and write the ledger back.
    pub fn append_to_file(path: &std::path::Path, entry: TrendEntry) -> Result<(), String> {
        let mut ledger = Self::load(path)?;
        ledger.entries.push(entry);
        std::fs::write(path, ledger.to_json()).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Distinct bench names, in first-seen order.
    pub fn bench_names(&self) -> Vec<String> {
        let mut names: Vec<String> = Vec::new();
        for e in &self.entries {
            if !names.contains(&e.bench) {
                names.push(e.bench.clone());
            }
        }
        names
    }

    /// The two most recent entries of a bench as `(previous, latest)`,
    /// when it has at least two.
    pub fn last_two(&self, bench: &str) -> Option<(&TrendEntry, &TrendEntry)> {
        let mut latest = None;
        let mut previous = None;
        for e in self.entries.iter().filter(|e| e.bench == bench) {
            previous = latest;
            latest = Some(e);
        }
        Some((previous?, latest?))
    }
}

/// Diff the last two entries of each bench (or just `bench`, when
/// given): metric names become `BENCH.METRIC`, judged under the
/// wall-clock tolerance with lower-is-better polarity (bench medians
/// are ns/op and overhead ratios).
pub fn diff_trend(
    ledger: &TrendLedger,
    bench: Option<&str>,
    opts: &DiffOptions,
) -> Result<DiffReport, String> {
    let names = match bench {
        Some(name) => {
            if !ledger.entries.iter().any(|e| e.bench == name) {
                return Err(format!("bench {name:?} is not in the ledger"));
            }
            vec![name.to_string()]
        }
        None => ledger.bench_names(),
    };
    if names.is_empty() {
        return Err("trend ledger has no entries".to_string());
    }
    let mut metrics: Vec<MetricDiff> = Vec::new();
    let mut warnings: Vec<String> = Vec::new();
    for name in &names {
        let Some((previous, latest)) = ledger.last_two(name) else {
            warnings.push(format!(
                "bench {name:?} has a single entry; nothing to compare yet"
            ));
            continue;
        };
        for m in &latest.metrics {
            match previous.metrics.iter().find(|p| p.name == m.name) {
                Some(p) => metrics.push(classify(
                    format!("{name}.{}", m.name),
                    p.value,
                    m.value,
                    true,
                    Tolerance::Wall,
                    opts,
                )),
                None => warnings.push(format!(
                    "bench {name:?} metric {:?} is new; no baseline",
                    m.name
                )),
            }
        }
    }
    Ok(DiffReport::from_metrics(metrics, warnings, opts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::DiffClass;

    fn ledger() -> TrendLedger {
        let mut ledger = TrendLedger::new();
        ledger.entries.push(TrendEntry::new(
            "obs_overhead",
            1.0,
            "ns_per_op",
            &[("per_job_enabled", 700.0), ("registry_snapshot", 25000.0)],
        ));
        ledger.entries.push(TrendEntry::new(
            "obs_overhead",
            2.0,
            "ns_per_op",
            &[("per_job_enabled", 710.0), ("registry_snapshot", 9000.0)],
        ));
        ledger
    }

    #[test]
    fn ledger_round_trips_through_json() {
        let text = ledger().to_json();
        let parsed = TrendLedger::parse(&text).expect("parses");
        assert_eq!(parsed.entries.len(), 2);
        assert_eq!(parsed.entries[0].bench, "obs_overhead");
        assert_eq!(parsed.entries[1].metrics[1].value, 9000.0);
    }

    #[test]
    fn parse_rejects_unknown_schemas() {
        let err = TrendLedger::parse("{\"schema\":\"swdual-trend/9\",\"entries\":[]}").unwrap_err();
        assert!(err.contains("swdual-trend/9"), "{err}");
        assert!(err.contains(TREND_SCHEMA), "{err}");
    }

    #[test]
    fn diff_compares_last_two_entries() {
        let report = diff_trend(&ledger(), None, &DiffOptions::default()).expect("diffs");
        let snapshot = report
            .metrics
            .iter()
            .find(|m| m.name == "obs_overhead.registry_snapshot")
            .unwrap();
        assert_eq!(snapshot.class, DiffClass::Improved);
        // +1.4% is inside the 5% wall tolerance.
        let per_job = report
            .metrics
            .iter()
            .find(|m| m.name == "obs_overhead.per_job_enabled")
            .unwrap();
        assert_eq!(per_job.class, DiffClass::Neutral);
    }

    #[test]
    fn single_entry_benches_warn_instead_of_failing() {
        let mut l = TrendLedger::new();
        l.entries
            .push(TrendEntry::new("kernels", 1.0, "ns_per_op", &[("dp", 5.0)]));
        let report = diff_trend(&l, None, &DiffOptions::default()).expect("diffs");
        assert!(report.metrics.is_empty());
        assert!(!report.warnings.is_empty());
    }

    #[test]
    fn unknown_bench_name_is_an_error() {
        assert!(diff_trend(&ledger(), Some("nope"), &DiffOptions::default()).is_err());
    }

    #[test]
    fn append_to_file_bootstraps_and_appends() {
        let dir = std::env::temp_dir().join("swdual_trend_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_trend.json");
        std::fs::remove_file(&path).ok();
        TrendLedger::append_to_file(&path, TrendEntry::new("b", 1.0, "ns_per_op", &[("x", 1.0)]))
            .unwrap();
        TrendLedger::append_to_file(&path, TrendEntry::new("b", 2.0, "ns_per_op", &[("x", 2.0)]))
            .unwrap();
        let ledger = TrendLedger::load(&path).unwrap();
        assert_eq!(ledger.entries.len(), 2);
        let (prev, last) = ledger.last_two("b").unwrap();
        assert_eq!(prev.metrics[0].value, 1.0);
        assert_eq!(last.metrics[0].value, 2.0);
        std::fs::remove_file(&path).ok();
    }
}
