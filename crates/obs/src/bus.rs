//! The live event bus: bounded, lock-cheap broadcast of recorded
//! events to in-process subscribers.
//!
//! Every enabled [`Obs`](crate::Obs) publishes each recorded event into
//! the bus *under the same lock that orders the journal*, so a
//! subscriber observes events in exactly journal order. Subscribers are
//! **non-blocking**: each one owns a bounded queue, and when the queue
//! is full the event is *dropped for that subscriber* — never held, and
//! never allowed to backpressure the recording hot path. Drops are
//! accounted explicitly, per subscriber ([`BusSubscriber::dropped`])
//! and globally (`swdual_bus_dropped_events` in the Prometheus export),
//! so a lagging consumer is visible instead of silent.
//!
//! Cost model:
//! * disabled recorder — no bus exists at all (the usual
//!   allocation-free early return);
//! * enabled recorder, no taps — one relaxed atomic load per event;
//! * enabled recorder with taps — one `VecDeque` push (or an atomic
//!   drop count) per tap per event.
//!
//! The flight recorder's overwrite-oldest ring
//! ([`crate::flight::FlightRecorder`]) rides the same tap list with
//! different full-queue semantics: a ring keeps the *newest* N events,
//! a subscriber queue keeps the *oldest* pending ones and drops the
//! rest (a live consumer must not lose the stream's past, a crash dump
//! must not lose its present).

use crate::flight::RingShared;
use crate::Event;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on a subscriber's pending queue.
pub const DEFAULT_SUBSCRIBER_CAPACITY: usize = 4096;

/// Shared state of one subscription: the bounded queue the publisher
/// pushes into and the subscriber drains from.
pub(crate) struct SubShared {
    capacity: usize,
    queue: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
    closed: AtomicBool,
}

/// One tap on the bus: a subscriber queue (drop-newest when full) or a
/// flight-recorder ring (overwrite-oldest).
enum Tap {
    Queue(Arc<SubShared>),
    Ring(Arc<RingShared>),
}

/// The broadcast fan-out carried by every enabled recorder.
#[derive(Default)]
pub(crate) struct Bus {
    /// Open-tap count, checked before touching the tap list so the
    /// common no-subscriber publish costs one relaxed atomic load.
    tap_count: AtomicUsize,
    /// Events dropped across all subscribers since the recorder was
    /// created (ring taps never drop — they overwrite).
    dropped_total: AtomicU64,
    taps: Mutex<Vec<Tap>>,
}

impl Bus {
    /// Open a new bounded subscription.
    pub(crate) fn subscribe(&self, capacity: usize) -> Arc<SubShared> {
        let shared = Arc::new(SubShared {
            capacity: capacity.max(1),
            queue: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
            closed: AtomicBool::new(false),
        });
        let mut taps = self.taps.lock().expect("bus taps lock");
        taps.push(Tap::Queue(Arc::clone(&shared)));
        self.tap_count.fetch_add(1, Ordering::Relaxed);
        shared
    }

    /// Attach a flight-recorder ring as a tap.
    pub(crate) fn attach_ring(&self, ring: Arc<RingShared>) {
        let mut taps = self.taps.lock().expect("bus taps lock");
        taps.push(Tap::Ring(ring));
        self.tap_count.fetch_add(1, Ordering::Relaxed);
    }

    /// Deliver one event to every open tap. The caller holds the
    /// journal's event lock, so tap delivery order equals journal
    /// order. Closed subscriptions are swept out here, lazily.
    pub(crate) fn publish(&self, event: &Event) {
        if self.tap_count.load(Ordering::Relaxed) == 0 {
            return;
        }
        let mut taps = self.taps.lock().expect("bus taps lock");
        taps.retain(|tap| match tap {
            Tap::Queue(s) => {
                if s.closed.load(Ordering::Relaxed) {
                    self.tap_count.fetch_sub(1, Ordering::Relaxed);
                    return false;
                }
                let mut queue = s.queue.lock().expect("bus queue lock");
                if queue.len() < s.capacity {
                    queue.push_back(event.clone());
                } else {
                    // Never block, never grow: account the drop and
                    // move on. The subscriber reconciles via dropped().
                    s.dropped.fetch_add(1, Ordering::Relaxed);
                    self.dropped_total.fetch_add(1, Ordering::Relaxed);
                }
                true
            }
            Tap::Ring(r) => {
                r.record(event);
                true
            }
        });
    }

    /// Events dropped across all subscribers so far.
    pub(crate) fn dropped_total(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }
}

/// A handle to one bounded subscription on a recorder's event bus.
///
/// Obtained from [`Obs::subscribe`](crate::Obs::subscribe). Dropping
/// the handle closes the subscription (the publisher sweeps it out on
/// its next event). A subscriber on a *disabled* recorder is inert:
/// it allocates nothing, receives nothing and reports zero drops.
pub struct BusSubscriber(Option<Arc<SubShared>>);

impl BusSubscriber {
    pub(crate) fn live(shared: Arc<SubShared>) -> BusSubscriber {
        BusSubscriber(Some(shared))
    }

    /// The inert subscriber a disabled recorder hands out.
    pub(crate) fn disabled() -> BusSubscriber {
        BusSubscriber(None)
    }

    /// Whether this subscription is backed by a live recorder.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Pop the oldest pending event, if any. Never blocks.
    pub fn try_recv(&self) -> Option<Event> {
        let shared = self.0.as_ref()?;
        shared.queue.lock().expect("bus queue lock").pop_front()
    }

    /// Drain every pending event, oldest first. Never blocks.
    pub fn drain(&self) -> Vec<Event> {
        match &self.0 {
            Some(shared) => {
                let mut queue = shared.queue.lock().expect("bus queue lock");
                queue.drain(..).collect()
            }
            None => Vec::new(),
        }
    }

    /// Drain into a caller-owned buffer (appended), returning how many
    /// events arrived. Lets steady-state consumers reuse one
    /// allocation.
    pub fn drain_into(&self, buf: &mut Vec<Event>) -> usize {
        match &self.0 {
            Some(shared) => {
                let mut queue = shared.queue.lock().expect("bus queue lock");
                let n = queue.len();
                buf.extend(queue.drain(..));
                n
            }
            None => 0,
        }
    }

    /// Events the publisher dropped on this subscription because the
    /// queue was full. `received + pending + dropped` always equals the
    /// number of events published since the subscription opened.
    pub fn dropped(&self) -> u64 {
        match &self.0 {
            Some(shared) => shared.dropped.load(Ordering::Relaxed),
            None => 0,
        }
    }

    /// Pending (delivered but not yet drained) events.
    pub fn pending(&self) -> usize {
        match &self.0 {
            Some(shared) => shared.queue.lock().expect("bus queue lock").len(),
            None => 0,
        }
    }
}

impl Drop for BusSubscriber {
    fn drop(&mut self) {
        if let Some(shared) = &self.0 {
            shared.closed.store(true, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{Obs, Track};

    #[test]
    fn subscriber_sees_events_in_journal_order() {
        let obs = Obs::enabled();
        obs.instant(Track::Master, "before", &[]);
        let sub = obs.subscribe();
        obs.instant(Track::Master, "a", &[]);
        obs.span(Track::Worker(0), "task-0", 0.0, 1.0, Some((0.0, 1.0)), &[]);
        obs.instant(Track::Faults, "b", &[]);
        let names: Vec<String> = sub.drain().into_iter().map(|e| e.name).collect();
        // Only events published after subscribing arrive, in order.
        assert_eq!(names, vec!["a", "task-0", "b"]);
        assert_eq!(sub.dropped(), 0);
    }

    #[test]
    fn full_queue_drops_newest_and_accounts_for_it() {
        let obs = Obs::enabled();
        let sub = obs.subscribe_with_capacity(2);
        for i in 0..5 {
            obs.instant(Track::Master, &format!("e{i}"), &[]);
        }
        let names: Vec<String> = sub.drain().into_iter().map(|e| e.name).collect();
        // Oldest pending survive; the overflow was dropped, not queued.
        assert_eq!(names, vec!["e0", "e1"]);
        assert_eq!(sub.dropped(), 3);
        assert_eq!(obs.bus_dropped_events(), 3);
        // Draining frees capacity again.
        obs.instant(Track::Master, "late", &[]);
        assert_eq!(sub.drain().len(), 1);
        assert_eq!(sub.dropped(), 3);
    }

    #[test]
    fn dropping_the_subscriber_closes_the_tap() {
        let obs = Obs::enabled();
        let sub = obs.subscribe();
        obs.instant(Track::Master, "seen", &[]);
        assert_eq!(sub.pending(), 1);
        drop(sub);
        // The publisher sweeps the closed tap on the next event and
        // keeps recording normally.
        obs.instant(Track::Master, "unseen", &[]);
        obs.instant(Track::Master, "unseen2", &[]);
        assert_eq!(obs.event_count(), 3);
        assert_eq!(obs.bus_dropped_events(), 0);
    }

    #[test]
    fn disabled_recorder_hands_out_an_inert_subscriber() {
        let obs = Obs::disabled();
        let sub = obs.subscribe();
        assert!(!sub.is_live());
        obs.instant(Track::Master, "nothing", &[]);
        assert!(sub.drain().is_empty());
        assert!(sub.try_recv().is_none());
        assert_eq!(sub.dropped(), 0);
        assert_eq!(sub.pending(), 0);
        assert_eq!(obs.bus_dropped_events(), 0);
    }

    #[test]
    fn multiple_subscribers_each_get_the_full_stream() {
        let obs = Obs::enabled();
        let a = obs.subscribe();
        let b = obs.subscribe_with_capacity(1);
        obs.instant(Track::Master, "x", &[]);
        obs.instant(Track::Master, "y", &[]);
        assert_eq!(a.drain().len(), 2);
        assert_eq!(b.drain().len(), 1); // capacity 1: second dropped
        assert_eq!(b.dropped(), 1);
        assert_eq!(obs.bus_dropped_events(), 1);
    }

    #[test]
    fn concurrent_publishers_yield_a_journal_consistent_stream() {
        let obs = Obs::enabled();
        let sub = obs.subscribe_with_capacity(10_000);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let handle = obs.clone();
                scope.spawn(move || {
                    for j in 0..100 {
                        handle.span(
                            Track::Worker(w),
                            &format!("job-{j}"),
                            0.0,
                            0.1,
                            None,
                            &[("w", w as f64)],
                        );
                    }
                });
            }
        });
        let journal: Vec<(String, String)> = obs
            .events()
            .iter()
            .map(|e| (e.track.label(), e.name.clone()))
            .collect();
        let seen: Vec<(String, String)> = sub
            .drain()
            .into_iter()
            .map(|e| (e.track.label(), e.name))
            .collect();
        // Nothing dropped at this capacity, so the streams are equal —
        // publication happens under the journal's own ordering lock.
        assert_eq!(sub.dropped(), 0);
        assert_eq!(seen, journal);
    }
}
