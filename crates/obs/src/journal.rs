//! Journal parsing shared by every journal consumer.
//!
//! `swdual analyze`, `swdual profile` and `swdual diff` all read the
//! same JSON-lines format: a `{"schema":"swdual-journal/1",...}` header
//! line followed by one event object per line. This module owns the
//! schema tag, the header check and the line parser so the three
//! consumers cannot drift apart on what a valid journal is.

use crate::{Event, EventKind, Track};
use serde::Value;

/// Schema tag this build *writes* (and reads): v2 adds causal lineage
/// (`task_dispatch` instants, decision ids, device-span task tags).
pub const JOURNAL_SCHEMA: &str = "swdual-journal/2";

/// Previous schema tag, still accepted on read. v1 journals lack the
/// lineage events, so `swdual explain` degrades gracefully on them
/// (no dispatch edges, queue-wait folded into imbalance).
pub const JOURNAL_SCHEMA_V1: &str = "swdual-journal/1";

/// Every schema tag this build can read, newest first.
pub const SUPPORTED_SCHEMAS: [&str; 2] = [JOURNAL_SCHEMA, JOURNAL_SCHEMA_V1];

/// Why a journal could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// The journal has no lines at all.
    EmptyJournal,
    /// The first line is not a schema header.
    MissingHeader,
    /// The header names a schema this build does not understand.
    /// Raised only for truly unknown tags — every entry of
    /// [`SUPPORTED_SCHEMAS`] parses.
    SchemaMismatch {
        /// The schema tag the journal declared.
        found: String,
        /// The schemas this build reads, rendered as a list
        /// (see [`SUPPORTED_SCHEMAS`]).
        expected: String,
    },
    /// An event line failed to parse.
    Malformed {
        /// 1-based line number in the journal.
        line: usize,
        /// What was wrong with it.
        reason: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::EmptyJournal => write!(f, "journal is empty"),
            JournalError::MissingHeader => write!(
                f,
                "journal has no schema header (expected a first line like \
                 {{\"schema\":\"{JOURNAL_SCHEMA}\"}}); is this a {JOURNAL_SCHEMA} journal?"
            ),
            JournalError::SchemaMismatch { found, expected } => write!(
                f,
                "journal schema \"{found}\" is not supported (this build reads {expected})"
            ),
            JournalError::Malformed { line, reason } => {
                write!(f, "journal line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// The "this build reads ..." list rendered into schema errors.
fn supported_list() -> String {
    SUPPORTED_SCHEMAS
        .iter()
        .map(|s| format!("\"{s}\""))
        .collect::<Vec<_>>()
        .join(" and ")
}

/// Validate a journal's first line as a schema header. Accepts every
/// tag in [`SUPPORTED_SCHEMAS`] (currently v2 and v1); anything else
/// is a [`JournalError::SchemaMismatch`] naming all supported tags.
pub fn validate_header(first_line: &str) -> Result<(), JournalError> {
    journal_schema(first_line).map(|_| ())
}

/// Validate a journal's first line and return which supported schema
/// tag it declared — consumers that degrade on v1 (explain) branch on
/// this.
pub fn journal_schema(first_line: &str) -> Result<&'static str, JournalError> {
    let header: Value =
        serde_json::from_str(first_line).map_err(|_| JournalError::MissingHeader)?;
    let schema = header
        .get("schema")
        .and_then(Value::as_str)
        .ok_or(JournalError::MissingHeader)?;
    SUPPORTED_SCHEMAS
        .iter()
        .find(|s| **s == schema)
        .copied()
        .ok_or_else(|| JournalError::SchemaMismatch {
            found: schema.to_string(),
            expected: supported_list(),
        })
}

/// Parse a journal back into events, validating the schema header.
pub fn parse_journal(journal: &str) -> Result<Vec<Event>, JournalError> {
    let mut lines = journal.lines().enumerate();
    let (_, header) = lines.next().ok_or(JournalError::EmptyJournal)?;
    validate_header(header)?;

    let mut events = Vec::new();
    for (idx, line) in lines {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_event_line_at(line, idx + 1)?);
    }
    Ok(events)
}

/// Parse one journal event line (anything after the header). Streaming
/// consumers — `swdual top`/`tail` following a socket or a growing
/// file — decode line by line instead of re-parsing the whole
/// document on every read.
pub fn parse_event_line(line: &str) -> Result<Event, JournalError> {
    parse_event_line_at(line, 0)
}

fn parse_event_line_at(line: &str, line_no: usize) -> Result<Event, JournalError> {
    let malformed = |reason: &str| JournalError::Malformed {
        line: line_no,
        reason: reason.to_string(),
    };
    let value: Value = serde_json::from_str(line).map_err(|_| malformed("not valid JSON"))?;
    let track_label = value
        .get("track")
        .and_then(Value::as_str)
        .ok_or_else(|| malformed("missing \"track\""))?;
    let track = Track::from_label(track_label)
        .ok_or_else(|| malformed(&format!("unknown track \"{track_label}\"")))?;
    let name = value
        .get("name")
        .and_then(Value::as_str)
        .ok_or_else(|| malformed("missing \"name\""))?
        .to_string();
    let kind = match value.get("kind").and_then(Value::as_str) {
        Some("span") => EventKind::Span,
        Some("instant") => EventKind::Instant,
        _ => return Err(malformed("missing or unknown \"kind\"")),
    };
    // Non-finite numbers (hand-edited or truncated journals) are
    // dropped rather than propagated, so downstream utilization /
    // imbalance / quantile math never renders NaN or inf.
    let num = |key: &str| {
        value
            .get(key)
            .and_then(Value::as_f64)
            .filter(|v| v.is_finite())
    };
    let args = match value.get("args").and_then(Value::as_object) {
        Some(fields) => fields
            .iter()
            .filter_map(|(k, v)| v.as_f64().filter(|v| v.is_finite()).map(|v| (k.clone(), v)))
            .collect(),
        None => Vec::new(),
    };
    Ok(Event {
        track,
        name,
        kind,
        wall_start: num("wall_start").unwrap_or(0.0),
        wall_dur: num("wall_dur").unwrap_or(0.0),
        virt_start: num("virt_start"),
        virt_dur: num("virt_dur"),
        args,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_validation_accepts_the_current_schema() {
        assert!(
            validate_header(&format!("{{\"schema\":\"{JOURNAL_SCHEMA}\",\"events\":3}}")).is_ok()
        );
        assert_eq!(
            journal_schema(&format!("{{\"schema\":\"{JOURNAL_SCHEMA}\"}}")).unwrap(),
            JOURNAL_SCHEMA
        );
    }

    #[test]
    fn header_validation_accepts_v1_journals() {
        // Back-compat contract: journals written by older builds keep
        // parsing after the v2 schema bump.
        assert!(validate_header(&format!(
            "{{\"schema\":\"{JOURNAL_SCHEMA_V1}\",\"events\":3}}"
        ))
        .is_ok());
        assert_eq!(
            journal_schema(&format!("{{\"schema\":\"{JOURNAL_SCHEMA_V1}\"}}")).unwrap(),
            JOURNAL_SCHEMA_V1
        );
    }

    #[test]
    fn v1_journal_bodies_parse_end_to_end() {
        let journal = format!(
            "{{\"schema\":\"{JOURNAL_SCHEMA_V1}\",\"events\":1}}\n\
             {{\"track\":\"worker:0\",\"name\":\"task-3\",\"kind\":\"span\",\
             \"wall_start\":0.0,\"wall_dur\":1.0,\"virt_start\":0.0,\"virt_dur\":2.0,\
             \"args\":{{\"task\":3.0}}}}\n"
        );
        let events = parse_journal(&journal).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].track, Track::Worker(0));
        assert_eq!(events[0].virt_dur, Some(2.0));
    }

    #[test]
    fn header_validation_rejects_non_headers() {
        assert_eq!(
            validate_header("not json").unwrap_err(),
            JournalError::MissingHeader
        );
        assert_eq!(
            validate_header("{\"events\":3}").unwrap_err(),
            JournalError::MissingHeader
        );
    }

    #[test]
    fn version_mismatch_names_both_versions() {
        // Every consumer (analyze/profile/diff) funnels through this
        // helper, so the message must carry both the found and the
        // supported tag — this is the regression test for that contract.
        let err = validate_header("{\"schema\":\"swdual-journal/99\"}").unwrap_err();
        assert_eq!(
            err,
            JournalError::SchemaMismatch {
                found: "swdual-journal/99".to_string(),
                expected: supported_list(),
            }
        );
        let text = err.to_string();
        assert!(text.contains("swdual-journal/99"), "{text}");
        // Truly unknown schemas name *both* supported versions.
        assert!(text.contains(JOURNAL_SCHEMA), "{text}");
        assert!(text.contains(JOURNAL_SCHEMA_V1), "{text}");
    }

    #[test]
    fn parse_rejects_empty_and_headerless_journals() {
        assert_eq!(parse_journal("").unwrap_err(), JournalError::EmptyJournal);
        assert_eq!(
            parse_journal("{\"no\":\"header\"}\n").unwrap_err(),
            JournalError::MissingHeader
        );
    }
}
