//! Sharded live-metrics registry: counters, gauges and log-bucketed
//! latency histograms.
//!
//! The event recorder in [`crate`] keeps a faithful journal; this
//! module keeps cheap *aggregates* that can be read while a run is in
//! flight (the `--progress` line) and exported as Prometheus text.
//!
//! Design:
//!
//! * A [`Metrics`] handle is a cheap clone around an `Option<Arc<..>>`,
//!   exactly like [`Obs`](crate::Obs); the disabled handle returns
//!   before touching a lock or allocating.
//! * The registry is **sharded**: writes land in one of a fixed set of
//!   shards, each behind its own mutex, so per-worker instrumentation
//!   never contends with other workers. [`Metrics::for_shard`] pins a
//!   handle to the shard for a worker id.
//! * [`Metrics::snapshot`] merges all shards: counters sum, gauges keep
//!   the most recent write (a global sequence number decides), and
//!   histograms merge bucket-wise.
//!
//! Histograms are log-bucketed: bucket `i` covers
//! `(MIN·γ^(i-1), MIN·γ^i]` with `γ = 2^(1/4) ≈ 1.19`, so any quantile
//! estimate is an over-estimate by at most one bucket's relative width:
//! `est/exact ∈ [1, γ)` for values above `MIN`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log buckets per histogram.
pub const HISTOGRAM_BUCKETS: usize = 256;

/// Smallest resolvable histogram value (seconds): one nanosecond.
pub const HISTOGRAM_MIN: f64 = 1e-9;

/// Bucket growth factor `2^(1/4)`: four buckets per doubling, ~19%
/// relative quantile error worst-case. 256 buckets reach
/// `1e-9 · γ^255 ≈ 1.5e10` seconds — far beyond any run.
pub const HISTOGRAM_GAMMA: f64 = 1.189_207_115_002_721;

/// Number of shards in an enabled registry.
const SHARDS: usize = 16;

/// Identity of one metric series: a name plus sorted `(key, value)`
/// labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (exported with the `swdual_` prefix).
    pub name: String,
    /// Label set, as given at the call site.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        MetricKey {
            name: name.to_string(),
            labels: labels
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }
}

/// Fixed-size log-bucketed histogram.
#[derive(Debug, Clone)]
struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn record(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn merge_from(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Zero in place, keeping the bucket allocation for reuse.
    fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum = 0.0;
        self.min = f64::INFINITY;
        self.max = f64::NEG_INFINITY;
    }
}

/// Bucket index for a value: 0 holds everything at or below
/// [`HISTOGRAM_MIN`]; bucket `i` covers `(MIN·γ^(i-1), MIN·γ^i]`.
pub fn bucket_index(value: f64) -> usize {
    if value <= HISTOGRAM_MIN {
        return 0;
    }
    let raw = (value / HISTOGRAM_MIN).ln() / HISTOGRAM_GAMMA.ln();
    // ceil with a nudge against `ln` round-off putting an exact bucket
    // boundary into the bucket above.
    let idx = (raw - 1e-9).ceil() as i64;
    idx.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
}

/// Upper bound of bucket `i` (its representative value).
pub fn bucket_upper(index: usize) -> f64 {
    HISTOGRAM_MIN * HISTOGRAM_GAMMA.powi(index as i32)
}

#[derive(Default)]
struct Shard {
    counters: BTreeMap<MetricKey, f64>,
    gauges: BTreeMap<MetricKey, (u64, f64)>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

struct RegistryInner {
    shards: Vec<Mutex<Shard>>,
    gauge_seq: AtomicU64,
    /// Persistent merge buffers for [`Metrics::snapshot`]: the maps
    /// (and every histogram's 256-bucket vec) are zeroed and reused
    /// across calls instead of reallocated, which is what makes
    /// polling snapshots (the `--progress` loop) cheap.
    scratch: Mutex<Shard>,
}

/// Handle to the sharded registry; cheap to clone. The default handle
/// is disabled and records nothing.
#[derive(Clone, Default)]
pub struct Metrics {
    inner: Option<Arc<RegistryInner>>,
    shard: usize,
}

impl Metrics {
    /// A registry that drops everything (the default).
    pub fn disabled() -> Metrics {
        Metrics {
            inner: None,
            shard: 0,
        }
    }

    /// A live registry.
    pub fn enabled() -> Metrics {
        Metrics {
            inner: Some(Arc::new(RegistryInner {
                shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
                // Sequences start at 1 so a zeroed scratch gauge (seq 0)
                // can never shadow a real shard write during the merge.
                gauge_seq: AtomicU64::new(1),
                scratch: Mutex::new(Shard::default()),
            })),
            shard: 0,
        }
    }

    /// Whether metrics are being kept.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle pinned to the shard for `id` (e.g. a worker id), so
    /// that worker's writes never contend with other workers'.
    pub fn for_shard(&self, id: usize) -> Metrics {
        Metrics {
            inner: self.inner.clone(),
            shard: id % SHARDS,
        }
    }

    fn shard(&self, inner: &Arc<RegistryInner>) -> usize {
        self.shard % inner.shards.len()
    }

    /// Add `delta` to the counter `name{labels}`.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], delta: f64) {
        let Some(inner) = &self.inner else { return };
        let mut shard = inner.shards[self.shard(inner)]
            .lock()
            .expect("metrics shard lock");
        let key = MetricKey::new(name, labels);
        *shard.counters.entry(key).or_insert(0.0) += delta;
    }

    /// Set the gauge `name{labels}` to `value`. On snapshot the most
    /// recent write wins across shards.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let Some(inner) = &self.inner else { return };
        let seq = inner.gauge_seq.fetch_add(1, Ordering::Relaxed);
        let mut shard = inner.shards[self.shard(inner)]
            .lock()
            .expect("metrics shard lock");
        let key = MetricKey::new(name, labels);
        shard.gauges.insert(key, (seq, value));
    }

    /// Record `value` into the histogram `name{labels}`.
    pub fn observe(&self, name: &str, labels: &[(&str, &str)], value: f64) {
        let Some(inner) = &self.inner else { return };
        let mut shard = inner.shards[self.shard(inner)]
            .lock()
            .expect("metrics shard lock");
        let key = MetricKey::new(name, labels);
        shard
            .histograms
            .entry(key)
            .or_insert_with(Histogram::new)
            .record(value);
    }

    /// Merge every shard into a consistent point-in-time view. The
    /// merge runs in persistent scratch buffers (series keys, bucket
    /// vecs) that are zeroed and reused across calls — series are never
    /// removed from a shard, so a scratch key is always re-merged and
    /// can never go stale.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let Some(inner) = &self.inner else {
            return MetricsSnapshot::default();
        };
        let mut scratch = inner.scratch.lock().expect("metrics scratch lock");
        let Shard {
            counters,
            gauges,
            histograms,
        } = &mut *scratch;
        for value in counters.values_mut() {
            *value = 0.0;
        }
        for (seq, _) in gauges.values_mut() {
            *seq = 0; // live writes carry seq ≥ 1 and always win
        }
        for histogram in histograms.values_mut() {
            histogram.reset();
        }
        for shard in &inner.shards {
            let shard = shard.lock().expect("metrics shard lock");
            for (key, value) in &shard.counters {
                match counters.get_mut(key) {
                    Some(existing) => *existing += value,
                    None => {
                        counters.insert(key.clone(), *value);
                    }
                }
            }
            for (key, (seq, value)) in &shard.gauges {
                match gauges.get_mut(key) {
                    Some(existing) if existing.0 >= *seq => {}
                    Some(existing) => *existing = (*seq, *value),
                    None => {
                        gauges.insert(key.clone(), (*seq, *value));
                    }
                }
            }
            for (key, histogram) in &shard.histograms {
                match histograms.get_mut(key) {
                    Some(existing) => existing.merge_from(histogram),
                    None => {
                        histograms.insert(key.clone(), histogram.clone());
                    }
                }
            }
        }
        MetricsSnapshot {
            counters: counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: gauges.iter().map(|(k, (_, v))| (k.clone(), *v)).collect(),
            histograms: histograms
                .iter()
                .map(|(k, h)| {
                    let snap = HistogramSnapshot {
                        count: h.count,
                        sum: h.sum,
                        min: if h.count > 0 { h.min } else { 0.0 },
                        max: if h.count > 0 { h.max } else { 0.0 },
                        buckets: h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter(|(_, c)| **c > 0)
                            .map(|(i, c)| (bucket_upper(i), *c))
                            .collect(),
                    };
                    (k.clone(), snap)
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("enabled", &self.is_enabled())
            .field("shard", &self.shard)
            .finish()
    }
}

/// Point-in-time merged view of the registry. All series sorted by
/// [`MetricKey`] for stable export ordering.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Monotonic counters, shard-summed.
    pub counters: Vec<(MetricKey, f64)>,
    /// Gauges, most recent write wins.
    pub gauges: Vec<(MetricKey, f64)>,
    /// Histograms, bucket-merged.
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    fn find<'a, T>(
        series: &'a [(MetricKey, T)],
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<&'a T> {
        let key = MetricKey::new(name, labels);
        series.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Value of a counter series, if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        Self::find(&self.counters, name, labels).copied()
    }

    /// Value of a gauge series, if present.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        Self::find(&self.gauges, name, labels).copied()
    }

    /// A histogram series, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        Self::find(&self.histograms, name, labels)
    }

    /// Sum every histogram series with this metric name into one
    /// (e.g. all per-worker job-latency histograms).
    pub fn histogram_summed(&self, name: &str) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for (key, h) in &self.histograms {
            if key.name != name {
                continue;
            }
            match &mut merged {
                None => merged = Some(h.clone()),
                Some(m) => m.merge_from(h),
            }
        }
        merged
    }
}

/// Immutable histogram view with quantile extraction.
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Exact smallest observation (0 when empty).
    pub min: f64,
    /// Exact largest observation (0 when empty).
    pub max: f64,
    /// Non-empty buckets as `(upper_bound, count)`, ascending.
    pub buckets: Vec<(f64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0..=1.0`). Returns the upper bound
    /// of the bucket holding the rank-`⌈q·count⌉` observation, clamped
    /// to the exact max — an over-estimate by at most a factor
    /// [`HISTOGRAM_GAMMA`]. `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (upper, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return Some(upper.min(self.max));
            }
        }
        Some(self.max)
    }

    /// Mean of observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum / self.count as f64)
        }
    }

    fn merge_from(&mut self, other: &HistogramSnapshot) {
        let mut merged: BTreeMap<u64, (f64, u64)> = BTreeMap::new();
        let mut insert = |upper: f64, count: u64| {
            let bits = upper.to_bits();
            merged
                .entry(bits)
                .and_modify(|(_, c)| *c += count)
                .or_insert((upper, count));
        };
        for (u, c) in &self.buckets {
            insert(*u, *c);
        }
        for (u, c) in &other.buckets {
            insert(*u, *c);
        }
        self.buckets = merged.into_values().collect();
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = if self.count == 0 {
                other.max
            } else {
                self.max.max(other.max)
            };
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let metrics = Metrics::disabled();
        metrics.counter("jobs", &[], 1.0);
        metrics.gauge("depth", &[("worker", "0")], 4.0);
        metrics.observe("latency", &[], 0.5);
        assert!(!metrics.is_enabled());
        let snap = metrics.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Metrics::default().is_enabled());
    }

    #[test]
    fn counters_sum_across_shards() {
        let metrics = Metrics::enabled();
        for w in 0..32 {
            metrics.for_shard(w).counter("jobs", &[], 1.0);
        }
        assert_eq!(metrics.snapshot().counter_value("jobs", &[]), Some(32.0));
    }

    #[test]
    fn counters_keep_labels_apart() {
        let metrics = Metrics::enabled();
        metrics.counter("cells", &[("worker", "0")], 10.0);
        metrics.counter("cells", &[("worker", "1")], 20.0);
        metrics.counter("cells", &[("worker", "0")], 5.0);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter_value("cells", &[("worker", "0")]), Some(15.0));
        assert_eq!(snap.counter_value("cells", &[("worker", "1")]), Some(20.0));
    }

    #[test]
    fn gauge_latest_write_wins_across_shards() {
        let metrics = Metrics::enabled();
        metrics.for_shard(3).gauge("queue_depth", &[], 9.0);
        metrics.for_shard(7).gauge("queue_depth", &[], 4.0);
        metrics.for_shard(1).gauge("queue_depth", &[], 2.0);
        assert_eq!(
            metrics.snapshot().gauge_value("queue_depth", &[]),
            Some(2.0)
        );
    }

    #[test]
    fn histogram_quantiles_and_stats() {
        let metrics = Metrics::enabled();
        for i in 1..=100 {
            metrics.observe("latency", &[], i as f64 * 1e-3);
        }
        let snap = metrics.snapshot();
        let h = snap.histogram("latency", &[]).expect("series exists");
        assert_eq!(h.count, 100);
        assert!((h.min - 1e-3).abs() < 1e-12);
        assert!((h.max - 0.1).abs() < 1e-12);
        assert!((h.mean().unwrap() - 0.0505).abs() < 1e-9);
        for (q, exact) in [(0.5, 0.05), (0.95, 0.095), (0.99, 0.099), (1.0, 0.1)] {
            let est = h.quantile(q).expect("non-empty");
            assert!(
                est >= exact * (1.0 - 1e-9) && est <= exact * HISTOGRAM_GAMMA,
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn histograms_merge_across_shards() {
        let metrics = Metrics::enabled();
        metrics.for_shard(0).observe("latency", &[], 0.010);
        metrics.for_shard(5).observe("latency", &[], 0.020);
        metrics.for_shard(9).observe("latency", &[], 0.040);
        let snap = metrics.snapshot();
        let h = snap.histogram("latency", &[]).expect("series exists");
        assert_eq!(h.count, 3);
        assert!((h.sum - 0.07).abs() < 1e-12);
        assert!((h.min - 0.010).abs() < 1e-12);
        assert!((h.max - 0.040).abs() < 1e-12);
    }

    #[test]
    fn histogram_summed_merges_labelled_series() {
        let metrics = Metrics::enabled();
        metrics.observe("job_seconds", &[("worker", "0")], 0.010);
        metrics.observe("job_seconds", &[("worker", "1")], 0.030);
        let snap = metrics.snapshot();
        let all = snap.histogram_summed("job_seconds").expect("merged");
        assert_eq!(all.count, 2);
        assert!((all.sum - 0.04).abs() < 1e-12);
        assert!((all.max - 0.030).abs() < 1e-12);
    }

    #[test]
    fn bucket_index_respects_boundaries() {
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(HISTOGRAM_MIN), 0);
        assert_eq!(bucket_index(f64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS {
            let upper = bucket_upper(i);
            assert_eq!(bucket_index(upper), i, "upper bound of bucket {i}");
            // Just above a boundary lands in the next bucket.
            if i + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(bucket_index(upper * 1.0001), i + 1);
            }
        }
    }

    #[test]
    fn quantile_is_within_one_bucket_of_exact() {
        let values: Vec<f64> = (0..500).map(|i| 1e-6 * 1.03f64.powi(i % 37)).collect();
        let metrics = Metrics::enabled();
        for v in &values {
            metrics.observe("x", &[], *v);
        }
        let snap = metrics.snapshot();
        let h = snap.histogram("x", &[]).expect("series");
        let mut sorted = values.clone();
        sorted.sort_by(f64::total_cmp);
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = h.quantile(q).expect("non-empty");
            assert!(
                est >= exact * (1.0 - 1e-9) && est <= exact * HISTOGRAM_GAMMA * (1.0 + 1e-9),
                "q={q}: est {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn concurrent_writes_are_all_kept() {
        let metrics = Metrics::enabled();
        std::thread::scope(|scope| {
            for w in 0..8 {
                let handle = metrics.for_shard(w);
                scope.spawn(move || {
                    for _ in 0..100 {
                        handle.counter("ops", &[], 1.0);
                        handle.observe("lat", &[], 1e-3);
                    }
                });
            }
        });
        let snap = metrics.snapshot();
        assert_eq!(snap.counter_value("ops", &[]), Some(800.0));
        assert_eq!(snap.histogram("lat", &[]).unwrap().count, 800);
    }
}
