//! Structured observability for the SWDUAL runtime.
//!
//! The recorder captures *events* — spans and instants — on named
//! tracks, each stamped on up to two clocks:
//!
//! * the **wall clock**: real elapsed seconds since the recorder was
//!   created (`Instant`-based, monotonic);
//! * the **modelled clock**: virtual seconds from the platform's rate
//!   models, the clock the paper's makespan bounds are stated in.
//!
//! A disabled recorder ([`Obs::disabled`], also the `Default`) is a
//! `None` behind a cheap `Clone`; every recording method returns before
//! touching a lock or allocating, so instrumented hot paths (the
//! per-job worker loop, scheduler inner loops) cost a branch when
//! tracing is off. Enabled recorders share one `Arc`'d buffer and may
//! be cloned freely across threads.
//!
//! Exports live in [`export`]: a JSON-lines journal, a
//! Prometheus-style text snapshot, and a Chrome-trace (Perfetto) JSON
//! timeline that overlays the planned schedule against actual
//! per-worker execution.

pub mod analysis;
pub mod bus;
pub mod diff;
pub mod explain;
pub mod export;
pub mod flight;
pub mod journal;
pub mod metrics;
pub mod profile;
pub mod trend;
pub mod watch;

pub use bus::BusSubscriber;
pub use flight::FlightRecorder;

use metrics::Metrics;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which timeline an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// Master orchestration phases (register/allocate/dispatch/merge).
    Master,
    /// Scheduler internals (binary-search iterations, knapsack picks).
    Scheduler,
    /// Actual execution on worker `id`.
    Worker(usize),
    /// Planned (scheduled) occupation of worker `id`.
    Planned(usize),
    /// Recovered occupation of worker `id`: placements re-planned onto
    /// it after another worker died. Kept apart from [`Track::Planned`]
    /// so trace exports can show planned vs actual vs recovered rows.
    Recovered(usize),
    /// Simulated device `id` kernel/transfer activity.
    Device(usize),
    /// Fault-tolerance events: injected faults, detected worker deaths,
    /// timeouts and re-dispatch decisions.
    Faults,
}

impl Track {
    /// Stable text label used by all exporters.
    pub fn label(&self) -> String {
        match self {
            Track::Master => "master".to_string(),
            Track::Scheduler => "scheduler".to_string(),
            Track::Worker(id) => format!("worker:{id}"),
            Track::Planned(id) => format!("planned:{id}"),
            Track::Recovered(id) => format!("recovered:{id}"),
            Track::Device(id) => format!("device:{id}"),
            Track::Faults => "faults".to_string(),
        }
    }

    /// Parse a label produced by [`Track::label`] back into a track.
    /// Used by the journal auditor; returns `None` for unknown labels.
    pub fn from_label(label: &str) -> Option<Track> {
        match label {
            "master" => return Some(Track::Master),
            "scheduler" => return Some(Track::Scheduler),
            "faults" => return Some(Track::Faults),
            _ => {}
        }
        let (kind, id) = label.split_once(':')?;
        let id: usize = id.parse().ok()?;
        match kind {
            "worker" => Some(Track::Worker(id)),
            "planned" => Some(Track::Planned(id)),
            "recovered" => Some(Track::Recovered(id)),
            "device" => Some(Track::Device(id)),
            _ => None,
        }
    }
}

/// Span (has duration) or instant (point in time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An interval with a start and a duration.
    Span,
    /// A point event; durations are zero.
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Timeline the event belongs to.
    pub track: Track,
    /// Event name (e.g. phase, task or kernel identifier).
    pub name: String,
    /// Span or instant.
    pub kind: EventKind,
    /// Wall-clock start, seconds since recorder creation.
    pub wall_start: f64,
    /// Wall-clock duration in seconds (zero for instants).
    pub wall_dur: f64,
    /// Modelled-clock start in seconds, when the event has one.
    pub virt_start: Option<f64>,
    /// Modelled-clock duration in seconds, when the event has one.
    pub virt_dur: Option<f64>,
    /// Free-form numeric annotations.
    pub args: Vec<(String, f64)>,
}

impl Event {
    /// Whether this is a profiling *detail* span that subdivides time
    /// already covered by a coarser span: worker `phase_*` spans live
    /// inside their task span, `kernel_launch`/`kernel_compute` inside
    /// the `kernel` span, and `d2h_transfer` is overlapped readback
    /// that never advances the device clock. Busy-time folds (the
    /// auditor, per-track metric aggregates) must skip these or the
    /// same seconds are counted twice; the profiler is their consumer.
    pub fn is_profile_detail(&self) -> bool {
        self.name.starts_with("phase_")
            || matches!(
                self.name.as_str(),
                "kernel_launch" | "kernel_compute" | "d2h_transfer"
            )
    }

    /// Whether this is a watchdog alert instant (`alert_*` on the
    /// faults track). Alerts are commentary *about* the run, not part
    /// of it: the fault auditor counts them separately, the causal
    /// explainer ignores them, and the watchdog itself skips them to
    /// avoid feedback loops.
    pub fn is_alert(&self) -> bool {
        self.track == Track::Faults && self.name.starts_with("alert_")
    }
}

struct Inner {
    origin: Instant,
    events: Mutex<Vec<Event>>,
    counters: Mutex<BTreeMap<String, f64>>,
    metrics: Metrics,
    /// Whether CUPTI-style phase profiling is on. Tracing can run
    /// without profiling; profiling implies tracing (the phase spans go
    /// through the same event buffer).
    profiling: AtomicBool,
    /// Live broadcast of recorded events to in-process subscribers and
    /// flight-recorder rings. Publication happens under the events
    /// lock, so subscribers observe journal order.
    bus: bus::Bus,
}

/// Handle to a recorder; cheap to clone and share across threads.
///
/// The default handle is disabled: recording methods are no-ops that
/// take no locks and perform no allocations.
#[derive(Clone, Default)]
pub struct Obs(Option<Arc<Inner>>);

impl Obs {
    /// A recorder that drops everything (the default).
    pub fn disabled() -> Obs {
        Obs(None)
    }

    /// A live recorder; its wall clock starts now. Carries a live
    /// [`Metrics`] registry reachable via [`Obs::metrics`]. Profiling
    /// is off until [`Obs::set_profiling`] switches it on.
    pub fn enabled() -> Obs {
        Obs(Some(Arc::new(Inner {
            origin: Instant::now(),
            events: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            metrics: Metrics::enabled(),
            profiling: AtomicBool::new(false),
            bus: bus::Bus::default(),
        })))
    }

    /// Switch phase profiling on or off. No-op on a disabled recorder
    /// (a disabled recorder can never profile).
    pub fn set_profiling(&self, on: bool) {
        if let Some(inner) = &self.0 {
            inner.profiling.store(on, Ordering::Relaxed);
        }
    }

    /// Whether instrumented code should record phase-level spans
    /// (profile build / DP loop / kernel launch / compute / transfer).
    /// Always false when the recorder is disabled; checking costs one
    /// branch plus one relaxed atomic load — no locks, no allocation.
    pub fn is_profiling(&self) -> bool {
        match &self.0 {
            Some(inner) => inner.profiling.load(Ordering::Relaxed),
            None => false,
        }
    }

    /// The live-metrics registry carried by this recorder. Disabled
    /// when the recorder is.
    pub fn metrics(&self) -> Metrics {
        match &self.0 {
            Some(inner) => inner.metrics.clone(),
            None => Metrics::disabled(),
        }
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Wall-clock seconds since the recorder was created (0 when
    /// disabled).
    pub fn now(&self) -> f64 {
        match &self.0 {
            Some(inner) => inner.origin.elapsed().as_secs_f64(),
            None => 0.0,
        }
    }

    /// Record a span with explicit wall times and optional modelled
    /// times. `virt` is `(start, duration)` on the modelled clock.
    pub fn span(
        &self,
        track: Track,
        name: &str,
        wall_start: f64,
        wall_dur: f64,
        virt: Option<(f64, f64)>,
        args: &[(&str, f64)],
    ) {
        let Some(inner) = &self.0 else { return };
        let event = Event {
            track,
            name: name.to_string(),
            kind: EventKind::Span,
            wall_start,
            wall_dur,
            virt_start: virt.map(|(s, _)| s),
            virt_dur: virt.map(|(_, d)| d),
            args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        };
        let mut events = inner.events.lock().expect("obs events lock");
        inner.bus.publish(&event);
        events.push(event);
    }

    /// Record a span that exists only on the modelled clock (e.g. a
    /// planned placement). It is pinned at wall time zero.
    pub fn virtual_span(
        &self,
        track: Track,
        name: &str,
        virt_start: f64,
        virt_dur: f64,
        args: &[(&str, f64)],
    ) {
        if self.0.is_none() {
            return;
        }
        self.span(track, name, 0.0, 0.0, Some((virt_start, virt_dur)), args);
    }

    /// Record a point event at the current wall time.
    pub fn instant(&self, track: Track, name: &str, args: &[(&str, f64)]) {
        let Some(inner) = &self.0 else { return };
        let event = Event {
            track,
            name: name.to_string(),
            kind: EventKind::Instant,
            wall_start: inner.origin.elapsed().as_secs_f64(),
            wall_dur: 0.0,
            virt_start: None,
            virt_dur: None,
            args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        };
        let mut events = inner.events.lock().expect("obs events lock");
        inner.bus.publish(&event);
        events.push(event);
    }

    /// Open a bounded live subscription on this recorder's event bus
    /// with the default capacity
    /// ([`bus::DEFAULT_SUBSCRIBER_CAPACITY`]). On a disabled recorder
    /// the returned subscriber is inert and nothing is allocated.
    pub fn subscribe(&self) -> BusSubscriber {
        self.subscribe_with_capacity(bus::DEFAULT_SUBSCRIBER_CAPACITY)
    }

    /// Open a bounded live subscription holding at most `capacity`
    /// pending events. When the queue is full the publisher drops the
    /// new event for this subscriber (accounted in
    /// [`BusSubscriber::dropped`] and [`Obs::bus_dropped_events`])
    /// rather than blocking the recording path.
    pub fn subscribe_with_capacity(&self, capacity: usize) -> BusSubscriber {
        match &self.0 {
            Some(inner) => BusSubscriber::live(inner.bus.subscribe(capacity)),
            None => BusSubscriber::disabled(),
        }
    }

    /// Attach a [`FlightRecorder`] ring so it shadows every event
    /// recorded from now on (overwrite-oldest, never drops the
    /// newest). No-op on a disabled recorder.
    pub fn attach_flight(&self, flight: &FlightRecorder) {
        if let Some(inner) = &self.0 {
            inner.bus.attach_ring(flight.ring());
        }
    }

    /// Total events dropped across all bus subscribers because their
    /// queues were full. Exported as `swdual_bus_dropped_events`.
    pub fn bus_dropped_events(&self) -> u64 {
        match &self.0 {
            Some(inner) => inner.bus.dropped_total(),
            None => 0,
        }
    }

    /// Add `delta` to the named aggregate counter. Mirrored into the
    /// live registry so every journal counter also appears in metric
    /// snapshots.
    pub fn counter(&self, name: &str, delta: f64) {
        let Some(inner) = &self.0 else { return };
        {
            let mut counters = inner.counters.lock().expect("obs counters lock");
            match counters.get_mut(name) {
                Some(v) => *v += delta,
                None => {
                    counters.insert(name.to_string(), delta);
                }
            }
        }
        inner.metrics.counter(name, &[], delta);
    }

    /// Snapshot of all recorded events, in recording order.
    pub fn events(&self) -> Vec<Event> {
        match &self.0 {
            Some(inner) => inner.events.lock().expect("obs events lock").clone(),
            None => Vec::new(),
        }
    }

    /// Snapshot of the events recorded at or after index `start`, in
    /// recording order. Lets pull-based streamers (the `--live-socket`
    /// writer) page through the retained journal with a cursor instead
    /// of holding a bounded subscription they might overflow.
    pub fn events_since(&self, start: usize) -> Vec<Event> {
        match &self.0 {
            Some(inner) => {
                let events = inner.events.lock().expect("obs events lock");
                events
                    .get(start..)
                    .map(<[Event]>::to_vec)
                    .unwrap_or_default()
            }
            None => Vec::new(),
        }
    }

    /// Snapshot of all counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, f64)> {
        match &self.0 {
            Some(inner) => inner
                .counters
                .lock()
                .expect("obs counters lock")
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            None => Vec::new(),
        }
    }

    /// Number of recorded events.
    pub fn event_count(&self) -> usize {
        match &self.0 {
            Some(inner) => inner.events.lock().expect("obs events lock").len(),
            None => 0,
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.is_enabled())
            .field("events", &self.event_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let obs = Obs::disabled();
        obs.span(Track::Master, "phase", 0.0, 1.0, None, &[]);
        obs.instant(Track::Scheduler, "tick", &[("lambda", 0.5)]);
        obs.counter("cells", 100.0);
        assert!(!obs.is_enabled());
        assert_eq!(obs.event_count(), 0);
        assert!(obs.events().is_empty());
        assert!(obs.counters().is_empty());
        assert_eq!(obs.now(), 0.0);
    }

    #[test]
    fn default_is_disabled() {
        assert!(!Obs::default().is_enabled());
    }

    #[test]
    fn enabled_records_spans_and_counters() {
        let obs = Obs::enabled();
        obs.span(
            Track::Worker(2),
            "task-0",
            0.5,
            1.5,
            Some((0.0, 2.0)),
            &[("cells", 64.0)],
        );
        obs.virtual_span(Track::Planned(2), "task-0", 0.0, 2.0, &[]);
        obs.counter("cells", 64.0);
        obs.counter("cells", 36.0);

        let events = obs.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].track, Track::Worker(2));
        assert_eq!(events[0].name, "task-0");
        assert_eq!(events[0].virt_dur, Some(2.0));
        assert_eq!(events[0].args, vec![("cells".to_string(), 64.0)]);
        assert_eq!(events[1].track, Track::Planned(2));
        assert_eq!(obs.counters(), vec![("cells".to_string(), 100.0)]);
    }

    #[test]
    fn clones_share_the_buffer() {
        let obs = Obs::enabled();
        let other = obs.clone();
        other.instant(Track::Master, "from-clone", &[]);
        assert_eq!(obs.event_count(), 1);
    }

    #[test]
    fn threads_can_record_concurrently() {
        let obs = Obs::enabled();
        std::thread::scope(|scope| {
            for w in 0..4 {
                let handle = obs.clone();
                scope.spawn(move || {
                    for j in 0..25 {
                        handle.span(Track::Worker(w), &format!("job-{j}"), 0.0, 0.1, None, &[]);
                        handle.counter("jobs", 1.0);
                    }
                });
            }
        });
        assert_eq!(obs.event_count(), 100);
        assert_eq!(obs.counters(), vec![("jobs".to_string(), 100.0)]);
    }

    #[test]
    fn track_labels_are_stable() {
        assert_eq!(Track::Master.label(), "master");
        assert_eq!(Track::Scheduler.label(), "scheduler");
        assert_eq!(Track::Worker(3).label(), "worker:3");
        assert_eq!(Track::Planned(3).label(), "planned:3");
        assert_eq!(Track::Recovered(3).label(), "recovered:3");
        assert_eq!(Track::Device(0).label(), "device:0");
        assert_eq!(Track::Faults.label(), "faults");
    }

    #[test]
    fn track_labels_round_trip() {
        for track in [
            Track::Master,
            Track::Scheduler,
            Track::Worker(7),
            Track::Planned(0),
            Track::Recovered(12),
            Track::Device(3),
            Track::Faults,
        ] {
            assert_eq!(Track::from_label(&track.label()), Some(track));
        }
        assert_eq!(Track::from_label("worker"), None);
        assert_eq!(Track::from_label("worker:x"), None);
        assert_eq!(Track::from_label("submarine:1"), None);
    }

    #[test]
    fn counters_mirror_into_the_registry() {
        let obs = Obs::enabled();
        obs.counter("cells", 42.0);
        obs.counter("cells", 8.0);
        let snap = obs.metrics().snapshot();
        assert_eq!(snap.counter_value("cells", &[]), Some(50.0));
    }

    #[test]
    fn disabled_obs_has_disabled_metrics() {
        assert!(!Obs::disabled().metrics().is_enabled());
        assert!(Obs::enabled().metrics().is_enabled());
    }

    #[test]
    fn profiling_flag_defaults_off_and_toggles() {
        let obs = Obs::enabled();
        assert!(!obs.is_profiling());
        obs.set_profiling(true);
        assert!(obs.is_profiling());
        // Clones share the flag (same Arc'd inner).
        let clone = obs.clone();
        assert!(clone.is_profiling());
        clone.set_profiling(false);
        assert!(!obs.is_profiling());
    }

    #[test]
    fn disabled_recorder_never_profiles() {
        let obs = Obs::disabled();
        obs.set_profiling(true);
        assert!(!obs.is_profiling());
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let obs = Obs::enabled();
        let a = obs.now();
        let b = obs.now();
        assert!(b >= a);
    }
}
