//! Exporters over a recorded event stream.
//!
//! Three formats:
//!
//! * [`journal_jsonl`] — one JSON object per line per event, in
//!   recording order; the raw material for ad-hoc analysis.
//! * [`metrics_text`] — Prometheus-style text exposition: aggregate
//!   counters plus busy-time/event-count gauges derived per track.
//! * [`chrome_trace`] — Chrome-trace (Perfetto / `chrome://tracing`)
//!   JSON. Three synthetic processes separate the clocks: pid 1 holds
//!   wall-clock spans, pid 2 holds modelled-clock *actual* execution,
//!   pid 3 holds the *planned* schedule — so loading the file shows
//!   plan vs reality side by side on the same modelled time axis.

use crate::{Event, EventKind, Obs, Track};
use serde::Value;

/// Microseconds in the trace's time unit per second of ours.
const TRACE_US: f64 = 1.0e6;

fn args_value(event: &Event) -> Value {
    Value::Object(
        event
            .args
            .iter()
            .map(|(k, v)| (k.clone(), Value::Float(*v)))
            .collect(),
    )
}

/// Render all events as JSON lines, one event per line.
pub fn journal_jsonl(obs: &Obs) -> String {
    let mut out = String::new();
    for event in obs.events() {
        let mut fields = vec![
            ("track".to_string(), Value::Str(event.track.label())),
            ("name".to_string(), Value::Str(event.name.clone())),
            (
                "kind".to_string(),
                Value::Str(
                    match event.kind {
                        EventKind::Span => "span",
                        EventKind::Instant => "instant",
                    }
                    .to_string(),
                ),
            ),
            ("wall_start".to_string(), Value::Float(event.wall_start)),
            ("wall_dur".to_string(), Value::Float(event.wall_dur)),
        ];
        if let (Some(vs), Some(vd)) = (event.virt_start, event.virt_dur) {
            fields.push(("virt_start".to_string(), Value::Float(vs)));
            fields.push(("virt_dur".to_string(), Value::Float(vd)));
        }
        if !event.args.is_empty() {
            fields.push(("args".to_string(), args_value(&event)));
        }
        out.push_str(
            &serde_json::to_string(&Value::Object(fields)).expect("journal event serialises"),
        );
        out.push('\n');
    }
    out
}

fn sanitize_metric(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Render counters and per-track aggregates in Prometheus text format.
pub fn metrics_text(obs: &Obs) -> String {
    let mut out = String::new();

    out.push_str("# TYPE swdual_events_total counter\n");
    out.push_str(&format!("swdual_events_total {}\n", obs.event_count()));

    let counters = obs.counters();
    if !counters.is_empty() {
        out.push_str("# TYPE swdual_counter counter\n");
        for (name, value) in &counters {
            out.push_str(&format!(
                "swdual_counter{{name=\"{}\"}} {}\n",
                sanitize_metric(name),
                value
            ));
        }
    }

    // Busy seconds and span counts per track, on both clocks.
    let mut tracks: Vec<(Track, f64, f64, u64)> = Vec::new();
    for event in obs.events() {
        if event.kind != EventKind::Span {
            continue;
        }
        let entry = match tracks.iter_mut().find(|(t, ..)| *t == event.track) {
            Some(entry) => entry,
            None => {
                tracks.push((event.track, 0.0, 0.0, 0));
                tracks.last_mut().expect("just pushed")
            }
        };
        entry.1 += event.wall_dur;
        entry.2 += event.virt_dur.unwrap_or(0.0);
        entry.3 += 1;
    }
    tracks.sort_by_key(|(t, ..)| *t);
    if !tracks.is_empty() {
        out.push_str("# TYPE swdual_track_busy_wall_seconds gauge\n");
        for (track, wall, _, _) in &tracks {
            out.push_str(&format!(
                "swdual_track_busy_wall_seconds{{track=\"{}\"}} {}\n",
                track.label(),
                wall
            ));
        }
        out.push_str("# TYPE swdual_track_busy_modelled_seconds gauge\n");
        for (track, _, virt, _) in &tracks {
            out.push_str(&format!(
                "swdual_track_busy_modelled_seconds{{track=\"{}\"}} {}\n",
                track.label(),
                virt
            ));
        }
        out.push_str("# TYPE swdual_track_spans_total counter\n");
        for (track, _, _, spans) in &tracks {
            out.push_str(&format!(
                "swdual_track_spans_total{{track=\"{}\"}} {}\n",
                track.label(),
                spans
            ));
        }
    }
    out
}

/// Process ids separating the four timelines in the trace viewer.
const PID_WALL: u64 = 1;
const PID_MODELLED: u64 = 2;
const PID_PLANNED: u64 = 3;
const PID_RECOVERED: u64 = 4;

/// Thread id inside a trace process for a track.
fn trace_tid(track: Track) -> u64 {
    match track {
        Track::Master => 0,
        Track::Scheduler => 1,
        Track::Faults => 2,
        Track::Worker(id) | Track::Planned(id) | Track::Recovered(id) => 10 + id as u64,
        Track::Device(id) => 1000 + id as u64,
    }
}

fn meta_event(pid: u64, tid: Option<u64>, which: &str, label: &str) -> Value {
    let mut fields = vec![
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::UInt(pid)),
        ("name".to_string(), Value::Str(which.to_string())),
        (
            "args".to_string(),
            Value::Object(vec![("name".to_string(), Value::Str(label.to_string()))]),
        ),
    ];
    if let Some(tid) = tid {
        fields.insert(2, ("tid".to_string(), Value::UInt(tid)));
    }
    Value::Object(fields)
}

fn complete_event(pid: u64, tid: u64, event: &Event, start: f64, dur: f64) -> Value {
    Value::Object(vec![
        ("ph".to_string(), Value::Str("X".to_string())),
        ("pid".to_string(), Value::UInt(pid)),
        ("tid".to_string(), Value::UInt(tid)),
        ("name".to_string(), Value::Str(event.name.clone())),
        ("ts".to_string(), Value::Float(start * TRACE_US)),
        ("dur".to_string(), Value::Float(dur * TRACE_US)),
        ("args".to_string(), args_value(event)),
    ])
}

fn instant_event(pid: u64, tid: u64, event: &Event) -> Value {
    Value::Object(vec![
        ("ph".to_string(), Value::Str("i".to_string())),
        ("pid".to_string(), Value::UInt(pid)),
        ("tid".to_string(), Value::UInt(tid)),
        ("name".to_string(), Value::Str(event.name.clone())),
        ("ts".to_string(), Value::Float(event.wall_start * TRACE_US)),
        ("s".to_string(), Value::Str("t".to_string())),
        ("args".to_string(), args_value(event)),
    ])
}

/// Render the event stream as Chrome-trace JSON.
///
/// The returned document has a single `traceEvents` array. Load it in
/// `chrome://tracing` or <https://ui.perfetto.dev>: the "planned
/// schedule" process mirrors the "modelled execution" process row for
/// row, so slippage between the scheduler's plan and what the workers
/// actually did is visible at a glance.
pub fn chrome_trace(obs: &Obs) -> String {
    let events = obs.events();
    let mut trace: Vec<Value> = vec![
        meta_event(PID_WALL, None, "process_name", "wall clock"),
        meta_event(PID_MODELLED, None, "process_name", "modelled execution"),
        meta_event(PID_PLANNED, None, "process_name", "planned schedule"),
        meta_event(PID_RECOVERED, None, "process_name", "recovered schedule"),
    ];

    // Name each (pid, tid) row after its track.
    let mut named: Vec<(u64, u64)> = Vec::new();
    for event in &events {
        let tid = trace_tid(event.track);
        let pids: &[u64] = match event.track {
            Track::Planned(_) => &[PID_PLANNED],
            Track::Recovered(_) => &[PID_RECOVERED],
            _ => &[PID_WALL, PID_MODELLED],
        };
        for &pid in pids {
            if !named.contains(&(pid, tid)) {
                named.push((pid, tid));
                trace.push(meta_event(
                    pid,
                    Some(tid),
                    "thread_name",
                    &event.track.label(),
                ));
            }
        }
    }

    for event in &events {
        let tid = trace_tid(event.track);
        match event.track {
            Track::Planned(_) => {
                // Planned placements live on the modelled clock only.
                if let (Some(vs), Some(vd)) = (event.virt_start, event.virt_dur) {
                    trace.push(complete_event(PID_PLANNED, tid, event, vs, vd));
                }
            }
            Track::Recovered(_) => {
                // Re-planned placements likewise: modelled clock only,
                // on their own process row.
                if let (Some(vs), Some(vd)) = (event.virt_start, event.virt_dur) {
                    trace.push(complete_event(PID_RECOVERED, tid, event, vs, vd));
                }
            }
            _ => match event.kind {
                EventKind::Span => {
                    trace.push(complete_event(
                        PID_WALL,
                        tid,
                        event,
                        event.wall_start,
                        event.wall_dur,
                    ));
                    if let (Some(vs), Some(vd)) = (event.virt_start, event.virt_dur) {
                        trace.push(complete_event(PID_MODELLED, tid, event, vs, vd));
                    }
                }
                EventKind::Instant => {
                    trace.push(instant_event(PID_WALL, tid, event));
                }
            },
        }
    }

    serde_json::to_string_pretty(&Value::Object(vec![(
        "traceEvents".to_string(),
        Value::Array(trace),
    )]))
    .expect("trace serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_obs() -> Obs {
        let obs = Obs::enabled();
        obs.span(Track::Master, "allocate", 0.0, 0.2, None, &[]);
        obs.span(
            Track::Worker(0),
            "task-0",
            0.2,
            1.0,
            Some((0.0, 1.1)),
            &[("cells", 42.0)],
        );
        obs.virtual_span(Track::Planned(0), "task-0", 0.0, 1.0, &[]);
        obs.instant(Track::Scheduler, "lambda", &[("value", 0.7)]);
        obs.counter("cells", 42.0);
        obs
    }

    #[test]
    fn journal_emits_one_line_per_event() {
        let journal = journal_jsonl(&sample_obs());
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let value: Value = serde_json::from_str(line).expect("journal line parses");
            assert!(value.get("track").is_some());
            assert!(value.get("name").is_some());
        }
        assert!(lines[1].contains("\"virt_dur\""));
        assert!(lines[3].contains("\"instant\""));
    }

    #[test]
    fn metrics_include_counters_and_track_aggregates() {
        let metrics = metrics_text(&sample_obs());
        assert!(metrics.contains("swdual_events_total 4"));
        assert!(metrics.contains("swdual_counter{name=\"cells\"} 42"));
        assert!(metrics.contains("swdual_track_busy_wall_seconds{track=\"worker:0\"} 1"));
        assert!(metrics.contains("swdual_track_busy_modelled_seconds{track=\"worker:0\"} 1.1"));
        assert!(metrics.contains("swdual_track_spans_total{track=\"master\"} 1"));
    }

    #[test]
    fn chrome_trace_parses_and_separates_clocks() {
        let trace = chrome_trace(&sample_obs());
        let value: Value = serde_json::from_str(&trace).expect("trace parses");
        let events = value
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());

        let span_on = |pid: u64| {
            events
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(Value::as_str) == Some("X")
                        && e.get("pid").and_then(Value::as_u64) == Some(pid)
                })
                .count()
        };
        // Master + worker wall spans; worker modelled span; planned span.
        assert_eq!(span_on(1), 2);
        assert_eq!(span_on(2), 1);
        assert_eq!(span_on(3), 1);

        // Planned and actual worker rows share a tid for side-by-side
        // comparison.
        let tid_of = |pid: u64| {
            events
                .iter()
                .find(|e| {
                    e.get("ph").and_then(Value::as_str) == Some("X")
                        && e.get("pid").and_then(Value::as_u64) == Some(pid)
                })
                .and_then(|e| e.get("tid").and_then(Value::as_u64))
                .expect("span has tid")
        };
        assert_eq!(tid_of(2), tid_of(3));
    }

    #[test]
    fn disabled_obs_exports_are_empty_but_valid() {
        let obs = Obs::disabled();
        assert!(journal_jsonl(&obs).is_empty());
        assert!(metrics_text(&obs).contains("swdual_events_total 0"));
        let value: Value = serde_json::from_str(&chrome_trace(&obs)).expect("empty trace parses");
        assert_eq!(
            value
                .get("traceEvents")
                .and_then(Value::as_array)
                .map(Vec::len),
            Some(4)
        );
    }

    #[test]
    fn recovered_spans_get_their_own_process() {
        let obs = Obs::enabled();
        obs.virtual_span(Track::Recovered(1), "task-4", 0.5, 1.5, &[("task", 4.0)]);
        obs.instant(Track::Faults, "worker_dead", &[("worker", 0.0)]);
        let trace = chrome_trace(&obs);
        let value: Value = serde_json::from_str(&trace).expect("trace parses");
        let events = value
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // The recovered placement is a span on pid 4, same tid scheme as
        // worker/planned rows.
        let recovered: Vec<&Value> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::as_str) == Some("X")
                    && e.get("pid").and_then(Value::as_u64) == Some(4)
            })
            .collect();
        assert_eq!(recovered.len(), 1);
        assert_eq!(
            recovered[0].get("tid").and_then(Value::as_u64),
            Some(11),
            "recovered row shares the worker tid scheme"
        );
        // The fault instant lands on the wall-clock process.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("i")
                && e.get("name").and_then(Value::as_str) == Some("worker_dead")
        }));
        // And the journal names both.
        let journal = journal_jsonl(&obs);
        assert!(journal.contains("recovered:1"));
        assert!(journal.contains("\"faults\""));
    }
}
