//! Exporters over a recorded event stream.
//!
//! Three formats:
//!
//! * [`journal_jsonl`] — one JSON object per line per event, in
//!   recording order; the raw material for ad-hoc analysis.
//! * [`metrics_text`] — Prometheus-style text exposition: aggregate
//!   counters plus busy-time/event-count gauges derived per track.
//! * [`chrome_trace`] — Chrome-trace (Perfetto / `chrome://tracing`)
//!   JSON. Three synthetic processes separate the clocks: pid 1 holds
//!   wall-clock spans, pid 2 holds modelled-clock *actual* execution,
//!   pid 3 holds the *planned* schedule — so loading the file shows
//!   plan vs reality side by side on the same modelled time axis.
//! * [`flamegraph_folded`] — collapsed-stack text over a folded
//!   [`Profile`], one `frame;frame;frame weight` line per stack, the
//!   format `inferno-flamegraph` / `flamegraph.pl` consume.
//! * [`speedscope_json`] — the <https://www.speedscope.app> file
//!   format, carrying the wall and modelled clocks as two sampled
//!   profiles over a shared frame table.

use crate::profile::{Profile, ProfileClock};
use crate::{Event, EventKind, Obs, Track};
use serde::Value;

/// Microseconds in the trace's time unit per second of ours.
const TRACE_US: f64 = 1.0e6;

fn args_value(event: &Event) -> Value {
    Value::Object(
        event
            .args
            .iter()
            .map(|(k, v)| (k.clone(), Value::Float(*v)))
            .collect(),
    )
}

/// Render the journal schema header line (no trailing newline):
/// `{"schema":"swdual-journal/2","events":N}`. Streaming writers that
/// cannot know the final count up front pass 0 —
/// [`crate::journal::validate_header`] checks the schema only.
pub fn journal_header(events: usize) -> String {
    serde_json::to_string(&Value::Object(vec![
        (
            "schema".to_string(),
            Value::Str(crate::analysis::JOURNAL_SCHEMA.to_string()),
        ),
        ("events".to_string(), Value::UInt(events as u64)),
    ]))
    .expect("journal header serialises")
}

/// Render one event as a journal JSON line (no trailing newline).
/// This is the single serialisation used by [`journal_jsonl`], the
/// flight recorder's crash dump and the live socket streamer, so every
/// producer emits lines [`crate::journal::parse_journal`] accepts.
pub fn journal_event_line(event: &Event) -> String {
    let mut fields = vec![
        ("track".to_string(), Value::Str(event.track.label())),
        ("name".to_string(), Value::Str(event.name.clone())),
        (
            "kind".to_string(),
            Value::Str(
                match event.kind {
                    EventKind::Span => "span",
                    EventKind::Instant => "instant",
                }
                .to_string(),
            ),
        ),
        ("wall_start".to_string(), Value::Float(event.wall_start)),
        ("wall_dur".to_string(), Value::Float(event.wall_dur)),
    ];
    if let (Some(vs), Some(vd)) = (event.virt_start, event.virt_dur) {
        fields.push(("virt_start".to_string(), Value::Float(vs)));
        fields.push(("virt_dur".to_string(), Value::Float(vd)));
    }
    if !event.args.is_empty() {
        fields.push(("args".to_string(), args_value(event)));
    }
    serde_json::to_string(&Value::Object(fields)).expect("journal event serialises")
}

/// Render all events as JSON lines: a schema header, then one event
/// per line. The header line
/// `{"schema":"swdual-journal/1","events":N}` lets
/// [`analysis::analyze_journal`](crate::analysis::analyze_journal)
/// reject incompatible journals with a typed error instead of garbage
/// output. A disabled recorder renders an empty journal (no header).
pub fn journal_jsonl(obs: &Obs) -> String {
    let mut out = String::new();
    if !obs.is_enabled() {
        return out;
    }
    let events = obs.events();
    out.push_str(&journal_header(events.len()));
    out.push('\n');
    for event in events {
        out.push_str(&journal_event_line(&event));
        out.push('\n');
    }
    out
}

/// Restrict a metric name to the Prometheus charset
/// `[a-zA-Z0-9_:]` (everything else becomes `_`).
fn sanitize_metric(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escape a label *value* per the Prometheus text exposition format:
/// backslash, double quote and newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a `{k="v",...}` label block ("" when no labels).
fn label_block(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", sanitize_metric(k), escape_label(v)))
        .collect();
    format!("{{{}}}", inner.join(","))
}

fn help_and_type(out: &mut String, name: &str, kind: &str, help: &str) {
    out.push_str(&format!("# HELP {name} {help}\n"));
    out.push_str(&format!("# TYPE {name} {kind}\n"));
}

/// Render counters, per-track aggregates and the live-metrics registry
/// (gauges and log-bucketed histograms) in Prometheus text format.
///
/// Output ordering is stable: fixed section order, series sorted by
/// name then labels inside each section. Label values are escaped per
/// the exposition format.
pub fn metrics_text(obs: &Obs) -> String {
    let mut out = String::new();

    help_and_type(
        &mut out,
        "swdual_events_total",
        "counter",
        "Events recorded in the journal.",
    );
    out.push_str(&format!("swdual_events_total {}\n", obs.event_count()));

    help_and_type(
        &mut out,
        "swdual_bus_dropped_events",
        "counter",
        "Events dropped by saturated live-bus subscriber queues.",
    );
    out.push_str(&format!(
        "swdual_bus_dropped_events {}\n",
        obs.bus_dropped_events()
    ));

    let counters = obs.counters();
    if !counters.is_empty() {
        help_and_type(
            &mut out,
            "swdual_counter",
            "counter",
            "Aggregate counters from the event recorder.",
        );
        for (name, value) in &counters {
            out.push_str(&format!(
                "swdual_counter{{name=\"{}\"}} {}\n",
                escape_label(name),
                value
            ));
        }
    }

    // Busy seconds and span counts per track, on both clocks.
    // Profiling detail spans subdivide coarser spans already counted,
    // so they are excluded from the busy aggregates.
    let mut tracks: Vec<(Track, f64, f64, u64)> = Vec::new();
    for event in obs.events() {
        if event.kind != EventKind::Span || event.is_profile_detail() {
            continue;
        }
        let entry = match tracks.iter_mut().find(|(t, ..)| *t == event.track) {
            Some(entry) => entry,
            None => {
                tracks.push((event.track, 0.0, 0.0, 0));
                tracks.last_mut().expect("just pushed")
            }
        };
        entry.1 += event.wall_dur;
        entry.2 += event.virt_dur.unwrap_or(0.0);
        entry.3 += 1;
    }
    tracks.sort_by_key(|(t, ..)| *t);
    if !tracks.is_empty() {
        help_and_type(
            &mut out,
            "swdual_track_busy_wall_seconds",
            "gauge",
            "Wall-clock busy seconds per track.",
        );
        for (track, wall, _, _) in &tracks {
            out.push_str(&format!(
                "swdual_track_busy_wall_seconds{{track=\"{}\"}} {}\n",
                escape_label(&track.label()),
                wall
            ));
        }
        help_and_type(
            &mut out,
            "swdual_track_busy_modelled_seconds",
            "gauge",
            "Modelled-clock busy seconds per track.",
        );
        for (track, _, virt, _) in &tracks {
            out.push_str(&format!(
                "swdual_track_busy_modelled_seconds{{track=\"{}\"}} {}\n",
                escape_label(&track.label()),
                virt
            ));
        }
        help_and_type(
            &mut out,
            "swdual_track_spans_total",
            "counter",
            "Spans recorded per track.",
        );
        for (track, _, _, spans) in &tracks {
            out.push_str(&format!(
                "swdual_track_spans_total{{track=\"{}\"}} {}\n",
                escape_label(&track.label()),
                spans
            ));
        }
    }

    // Live-metrics registry: gauges, labelled counters, histograms.
    let snapshot = obs.metrics().snapshot();

    let labelled: Vec<_> = snapshot
        .counters
        .iter()
        .filter(|(k, _)| !k.labels.is_empty())
        .collect();
    let mut last_name = String::new();
    for (key, value) in labelled {
        let name = format!("swdual_{}_total", sanitize_metric(&key.name));
        if name != last_name {
            help_and_type(
                &mut out,
                &name,
                "counter",
                "Labelled counter from the live-metrics registry.",
            );
            last_name = name.clone();
        }
        out.push_str(&format!("{}{} {}\n", name, label_block(&key.labels), value));
    }

    let mut last_name = String::new();
    for (key, value) in &snapshot.gauges {
        let name = format!("swdual_{}", sanitize_metric(&key.name));
        if name != last_name {
            help_and_type(
                &mut out,
                &name,
                "gauge",
                "Gauge from the live-metrics registry.",
            );
            last_name = name.clone();
        }
        out.push_str(&format!("{}{} {}\n", name, label_block(&key.labels), value));
    }

    let mut last_name = String::new();
    for (key, histogram) in &snapshot.histograms {
        let name = format!("swdual_{}", sanitize_metric(&key.name));
        if name != last_name {
            help_and_type(
                &mut out,
                &name,
                "histogram",
                "Log-bucketed histogram from the live-metrics registry.",
            );
            last_name = name.clone();
        }
        let mut cumulative = 0u64;
        for (upper, count) in &histogram.buckets {
            cumulative += count;
            let mut labels = key.labels.clone();
            labels.push(("le".to_string(), format!("{upper}")));
            out.push_str(&format!(
                "{}_bucket{} {}\n",
                name,
                label_block(&labels),
                cumulative
            ));
        }
        let mut labels = key.labels.clone();
        labels.push(("le".to_string(), "+Inf".to_string()));
        out.push_str(&format!(
            "{}_bucket{} {}\n",
            name,
            label_block(&labels),
            histogram.count
        ));
        out.push_str(&format!(
            "{}_sum{} {}\n",
            name,
            label_block(&key.labels),
            histogram.sum
        ));
        out.push_str(&format!(
            "{}_count{} {}\n",
            name,
            label_block(&key.labels),
            histogram.count
        ));
    }

    out
}

/// Process ids separating the four timelines in the trace viewer.
const PID_WALL: u64 = 1;
const PID_MODELLED: u64 = 2;
const PID_PLANNED: u64 = 3;
const PID_RECOVERED: u64 = 4;

/// Thread id inside a trace process for a track.
fn trace_tid(track: Track) -> u64 {
    match track {
        Track::Master => 0,
        Track::Scheduler => 1,
        Track::Faults => 2,
        Track::Worker(id) | Track::Planned(id) | Track::Recovered(id) => 10 + id as u64,
        Track::Device(id) => 1000 + id as u64,
    }
}

fn meta_event(pid: u64, tid: Option<u64>, which: &str, label: &str) -> Value {
    let mut fields = vec![
        ("ph".to_string(), Value::Str("M".to_string())),
        ("pid".to_string(), Value::UInt(pid)),
        ("name".to_string(), Value::Str(which.to_string())),
        (
            "args".to_string(),
            Value::Object(vec![("name".to_string(), Value::Str(label.to_string()))]),
        ),
    ];
    if let Some(tid) = tid {
        fields.insert(2, ("tid".to_string(), Value::UInt(tid)));
    }
    Value::Object(fields)
}

fn complete_event(pid: u64, tid: u64, event: &Event, start: f64, dur: f64) -> Value {
    Value::Object(vec![
        ("ph".to_string(), Value::Str("X".to_string())),
        ("pid".to_string(), Value::UInt(pid)),
        ("tid".to_string(), Value::UInt(tid)),
        ("name".to_string(), Value::Str(event.name.clone())),
        ("ts".to_string(), Value::Float(start * TRACE_US)),
        ("dur".to_string(), Value::Float(dur * TRACE_US)),
        ("args".to_string(), args_value(event)),
    ])
}

/// A flow event (`ph` ∈ {s, t, f}) tying causally-linked trace points
/// together with a shared id; the viewer draws arrows along them.
fn flow_event(ph: &str, pid: u64, tid: u64, ts: f64, task: i64) -> Value {
    let mut fields = vec![
        ("ph".to_string(), Value::Str(ph.to_string())),
        ("cat".to_string(), Value::Str("lineage".to_string())),
        ("id".to_string(), Value::UInt(task.max(0) as u64)),
        ("name".to_string(), Value::Str(format!("task-{task}"))),
        ("pid".to_string(), Value::UInt(pid)),
        ("tid".to_string(), Value::UInt(tid)),
        ("ts".to_string(), Value::Float(ts * TRACE_US)),
    ];
    if ph == "f" {
        // Bind the flow end to the enclosing slice.
        fields.push(("bp".to_string(), Value::Str("e".to_string())));
    }
    Value::Object(fields)
}

fn instant_event(pid: u64, tid: u64, event: &Event) -> Value {
    Value::Object(vec![
        ("ph".to_string(), Value::Str("i".to_string())),
        ("pid".to_string(), Value::UInt(pid)),
        ("tid".to_string(), Value::UInt(tid)),
        ("name".to_string(), Value::Str(event.name.clone())),
        ("ts".to_string(), Value::Float(event.wall_start * TRACE_US)),
        ("s".to_string(), Value::Str("t".to_string())),
        ("args".to_string(), args_value(event)),
    ])
}

/// Render the event stream as Chrome-trace JSON.
///
/// The returned document has a single `traceEvents` array. Load it in
/// `chrome://tracing` or <https://ui.perfetto.dev>: the "planned
/// schedule" process mirrors the "modelled execution" process row for
/// row, so slippage between the scheduler's plan and what the workers
/// actually did is visible at a glance.
pub fn chrome_trace(obs: &Obs) -> String {
    let events = obs.events();
    let mut trace: Vec<Value> = vec![
        meta_event(PID_WALL, None, "process_name", "wall clock"),
        meta_event(PID_MODELLED, None, "process_name", "modelled execution"),
        meta_event(PID_PLANNED, None, "process_name", "planned schedule"),
        meta_event(PID_RECOVERED, None, "process_name", "recovered schedule"),
    ];

    // Name each (pid, tid) row after its track.
    let mut named: Vec<(u64, u64)> = Vec::new();
    for event in &events {
        let tid = trace_tid(event.track);
        let pids: &[u64] = match event.track {
            Track::Planned(_) => &[PID_PLANNED],
            Track::Recovered(_) => &[PID_RECOVERED],
            _ => &[PID_WALL, PID_MODELLED],
        };
        for &pid in pids {
            if !named.contains(&(pid, tid)) {
                named.push((pid, tid));
                trace.push(meta_event(
                    pid,
                    Some(tid),
                    "thread_name",
                    &event.track.label(),
                ));
            }
        }
    }

    for event in &events {
        let tid = trace_tid(event.track);
        match event.track {
            Track::Planned(_) => {
                // Planned placements live on the modelled clock only.
                if let (Some(vs), Some(vd)) = (event.virt_start, event.virt_dur) {
                    trace.push(complete_event(PID_PLANNED, tid, event, vs, vd));
                }
            }
            Track::Recovered(_) => {
                // Re-planned placements likewise: modelled clock only,
                // on their own process row.
                if let (Some(vs), Some(vd)) = (event.virt_start, event.virt_dur) {
                    trace.push(complete_event(PID_RECOVERED, tid, event, vs, vd));
                }
            }
            _ => match event.kind {
                EventKind::Span => {
                    trace.push(complete_event(
                        PID_WALL,
                        tid,
                        event,
                        event.wall_start,
                        event.wall_dur,
                    ));
                    if let (Some(vs), Some(vd)) = (event.virt_start, event.virt_dur) {
                        trace.push(complete_event(PID_MODELLED, tid, event, vs, vd));
                    }
                }
                EventKind::Instant => {
                    trace.push(instant_event(PID_WALL, tid, event));
                }
            },
        }
    }

    // Causal flow arrows along the lineage edges: planned (or
    // recovered) placement → task_dispatch instant(s) → actual
    // execution. One flow per task id; journals without lineage
    // (v1, self-scheduling) simply contribute fewer arrows.
    let task_arg = |event: &Event| -> Option<i64> {
        event
            .args
            .iter()
            .find(|(k, _)| k == "task")
            .map(|(_, v)| *v as i64)
            .or_else(|| {
                event
                    .name
                    .strip_prefix("task-")
                    .and_then(|s| s.parse().ok())
            })
    };
    let mut started: Vec<i64> = Vec::new();
    for event in &events {
        let tid = trace_tid(event.track);
        match event.track {
            Track::Planned(_) | Track::Recovered(_) => {
                if let (Some(task), Some(vs)) = (task_arg(event), event.virt_start) {
                    if !started.contains(&task) {
                        started.push(task);
                        let pid = if matches!(event.track, Track::Planned(_)) {
                            PID_PLANNED
                        } else {
                            PID_RECOVERED
                        };
                        trace.push(flow_event("s", pid, tid, vs, task));
                    }
                }
            }
            Track::Master if event.name == "task_dispatch" => {
                if let Some(task) = task_arg(event) {
                    let ph = if started.contains(&task) {
                        "t"
                    } else {
                        started.push(task);
                        "s"
                    };
                    trace.push(flow_event(ph, PID_WALL, tid, event.wall_start, task));
                }
            }
            Track::Worker(_) if event.kind == EventKind::Span && !event.is_profile_detail() => {
                if let Some(task) = task_arg(event) {
                    if started.contains(&task) {
                        trace.push(flow_event("f", PID_WALL, tid, event.wall_start, task));
                    }
                }
            }
            _ => {}
        }
    }

    serde_json::to_string_pretty(&Value::Object(vec![(
        "traceEvents".to_string(),
        Value::Array(trace),
    )]))
    .expect("trace serialises")
}

/// Render a folded [`Profile`] as collapsed-stack flamegraph text on
/// the chosen clock: one `root;child;leaf <µs>` line per stack, weights
/// in integer microseconds (the unit `inferno-flamegraph` and
/// `flamegraph.pl` default to). Stacks that round to zero are dropped.
/// Lines are emitted in the profile's stable frame order, so output is
/// deterministic for a given journal.
pub fn flamegraph_folded(profile: &Profile, clock: ProfileClock) -> String {
    let mut out = String::new();
    for stack in &profile.stacks {
        let weight = match clock {
            ProfileClock::Wall => stack.wall,
            ProfileClock::Modelled => stack.modelled,
        };
        let micros = (weight * 1e6).round() as u64;
        if micros == 0 {
            continue;
        }
        out.push_str(&stack.frames.join(";"));
        out.push(' ');
        out.push_str(&micros.to_string());
        out.push('\n');
    }
    out
}

/// Render a folded [`Profile`] as speedscope JSON: a shared frame
/// table plus two `sampled` profiles — "wall clock" and "modelled
/// clock" — whose samples are the profile's stacks (root-first frame
/// indices) and whose weights are self seconds. Open the file at
/// <https://www.speedscope.app> and switch between the two clocks with
/// the profile selector.
pub fn speedscope_json(profile: &Profile) -> String {
    // Shared frame table: dedup frame names, stable first-seen order.
    let mut frames: Vec<String> = Vec::new();
    let mut index_of = std::collections::BTreeMap::new();
    for stack in &profile.stacks {
        for frame in &stack.frames {
            if !index_of.contains_key(frame) {
                index_of.insert(frame.clone(), frames.len() as u64);
                frames.push(frame.clone());
            }
        }
    }
    let frame_table = Value::Array(
        frames
            .iter()
            .map(|name| Value::Object(vec![("name".to_string(), Value::Str(name.clone()))]))
            .collect(),
    );

    let sampled = |name: &str, clock: ProfileClock| -> Value {
        let mut samples: Vec<Value> = Vec::new();
        let mut weights: Vec<Value> = Vec::new();
        let mut total = 0.0;
        for stack in &profile.stacks {
            let weight = match clock {
                ProfileClock::Wall => stack.wall,
                ProfileClock::Modelled => stack.modelled,
            };
            if weight <= 0.0 {
                continue;
            }
            samples.push(Value::Array(
                stack
                    .frames
                    .iter()
                    .map(|f| Value::UInt(index_of[f]))
                    .collect(),
            ));
            weights.push(Value::Float(weight));
            total += weight;
        }
        Value::Object(vec![
            ("type".to_string(), Value::Str("sampled".to_string())),
            ("name".to_string(), Value::Str(name.to_string())),
            ("unit".to_string(), Value::Str("seconds".to_string())),
            ("startValue".to_string(), Value::Float(0.0)),
            ("endValue".to_string(), Value::Float(total)),
            ("samples".to_string(), Value::Array(samples)),
            ("weights".to_string(), Value::Array(weights)),
        ])
    };

    serde_json::to_string_pretty(&Value::Object(vec![
        (
            "$schema".to_string(),
            Value::Str("https://www.speedscope.app/file-format-schema.json".to_string()),
        ),
        ("name".to_string(), Value::Str("swdual profile".to_string())),
        ("exporter".to_string(), Value::Str("swdual".to_string())),
        ("activeProfileIndex".to_string(), Value::UInt(0)),
        (
            "shared".to_string(),
            Value::Object(vec![("frames".to_string(), frame_table)]),
        ),
        (
            "profiles".to_string(),
            Value::Array(vec![
                sampled("wall clock", ProfileClock::Wall),
                sampled("modelled clock", ProfileClock::Modelled),
            ]),
        ),
    ]))
    .expect("speedscope document serialises")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_obs() -> Obs {
        let obs = Obs::enabled();
        obs.span(Track::Master, "allocate", 0.0, 0.2, None, &[]);
        obs.span(
            Track::Worker(0),
            "task-0",
            0.2,
            1.0,
            Some((0.0, 1.1)),
            &[("cells", 42.0)],
        );
        obs.virtual_span(Track::Planned(0), "task-0", 0.0, 1.0, &[]);
        obs.instant(Track::Scheduler, "lambda", &[("value", 0.7)]);
        obs.counter("cells", 42.0);
        obs
    }

    #[test]
    fn journal_emits_header_then_one_line_per_event() {
        let journal = journal_jsonl(&sample_obs());
        let lines: Vec<&str> = journal.lines().collect();
        assert_eq!(lines.len(), 5);
        let header: Value = serde_json::from_str(lines[0]).expect("header parses");
        assert_eq!(
            header.get("schema").and_then(Value::as_str),
            Some(crate::analysis::JOURNAL_SCHEMA)
        );
        assert_eq!(header.get("events").and_then(Value::as_u64), Some(4));
        for line in &lines[1..] {
            let value: Value = serde_json::from_str(line).expect("journal line parses");
            assert!(value.get("track").is_some());
            assert!(value.get("name").is_some());
        }
        assert!(lines[2].contains("\"virt_dur\""));
        assert!(lines[4].contains("\"instant\""));
    }

    #[test]
    fn metrics_include_counters_and_track_aggregates() {
        let metrics = metrics_text(&sample_obs());
        assert!(metrics.contains("swdual_events_total 4"));
        assert!(metrics.contains("swdual_counter{name=\"cells\"} 42"));
        assert!(metrics.contains("swdual_track_busy_wall_seconds{track=\"worker:0\"} 1"));
        assert!(metrics.contains("swdual_track_busy_modelled_seconds{track=\"worker:0\"} 1.1"));
        assert!(metrics.contains("swdual_track_spans_total{track=\"master\"} 1"));
    }

    #[test]
    fn metrics_format_regression() {
        // Exact shape of the exposition format: every series preceded
        // by # HELP and # TYPE, stable ordering, escaped label values,
        // histograms with cumulative buckets, +Inf, _sum and _count.
        let obs = sample_obs();
        let m = obs.metrics();
        m.gauge("queue_depth", &[], 3.0);
        m.observe("job_wall_seconds", &[("worker", "0")], 0.010);
        m.observe("job_wall_seconds", &[("worker", "0")], 0.020);
        m.counter("worker_jobs", &[("worker", "a\"b\\c\nd")], 2.0);
        let text = metrics_text(&obs);
        let lines: Vec<&str> = text.lines().collect();

        // Every non-comment metric family is introduced by HELP + TYPE.
        for family in [
            "swdual_events_total",
            "swdual_counter",
            "swdual_track_busy_wall_seconds",
            "swdual_worker_jobs_total",
            "swdual_queue_depth",
            "swdual_job_wall_seconds",
        ] {
            let help = lines
                .iter()
                .position(|l| l.starts_with(&format!("# HELP {family} ")))
                .unwrap_or_else(|| panic!("missing HELP for {family}"));
            assert!(
                lines[help + 1]
                    .strip_prefix(&format!("# TYPE {family} "))
                    .is_some(),
                "TYPE must follow HELP for {family}"
            );
        }

        // Label-value escaping: backslash, quote and newline.
        assert!(
            text.contains("swdual_worker_jobs_total{worker=\"a\\\"b\\\\c\\nd\"} 2"),
            "escaped label value missing in:\n{text}"
        );

        // Gauge section.
        assert!(text.contains("swdual_queue_depth 3"));

        // Histogram: cumulative buckets end at +Inf == _count.
        let bucket_lines: Vec<&str> = lines
            .iter()
            .filter(|l| l.starts_with("swdual_job_wall_seconds_bucket"))
            .copied()
            .collect();
        assert!(bucket_lines.len() >= 3, "two buckets plus +Inf");
        let last = bucket_lines.last().unwrap();
        assert!(last.contains("le=\"+Inf\""));
        assert!(last.ends_with(" 2"));
        assert!(text.contains("swdual_job_wall_seconds_count{worker=\"0\"} 2"));
        assert!(text.contains("swdual_job_wall_seconds_sum{worker=\"0\"} 0.03"));
        // Cumulative counts are non-decreasing.
        let counts: Vec<u64> = bucket_lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");

        // Stable ordering: rendering twice gives identical text.
        assert_eq!(text, metrics_text(&obs));
    }

    #[test]
    fn metrics_expose_bus_drops_and_alert_counters() {
        // Format regression for the live-observability series: the bus
        // drop counter is always present (0 when nothing dropped), and
        // watchdog alerts surface as swdual_alerts_total{kind=...}.
        let obs = sample_obs();
        let text = metrics_text(&obs);
        assert!(text.contains("# HELP swdual_bus_dropped_events "), "{text}");
        assert!(text.contains("# TYPE swdual_bus_dropped_events counter"));
        assert!(text.contains("\nswdual_bus_dropped_events 0\n"));

        // Saturate a tiny subscriber: the counter reflects the drops.
        let sub = obs.subscribe_with_capacity(1);
        obs.instant(Track::Master, "x", &[]);
        obs.instant(Track::Master, "y", &[]);
        obs.instant(Track::Master, "z", &[]);
        drop(sub);
        assert!(metrics_text(&obs).contains("\nswdual_bus_dropped_events 2\n"));

        // Alert counters ride the labelled-counter section with the
        // exact family name the satellite requires.
        obs.metrics()
            .counter("alerts", &[("kind", "straggler")], 1.0);
        obs.metrics()
            .counter("alerts", &[("kind", "worker-dead")], 2.0);
        let text = metrics_text(&obs);
        assert!(
            text.contains("# TYPE swdual_alerts_total counter"),
            "{text}"
        );
        assert!(text.contains("swdual_alerts_total{kind=\"straggler\"} 1"));
        assert!(text.contains("swdual_alerts_total{kind=\"worker-dead\"} 2"));
    }

    #[test]
    fn journal_event_line_round_trips_through_the_parser() {
        let obs = sample_obs();
        for event in obs.events() {
            let line = journal_event_line(&event);
            let mut doc = journal_header(1);
            doc.push('\n');
            doc.push_str(&line);
            doc.push('\n');
            let parsed = crate::journal::parse_journal(&doc).expect("fragment parses");
            assert_eq!(parsed.len(), 1);
            assert_eq!(parsed[0].name, event.name);
            assert_eq!(parsed[0].track, event.track);
        }
    }

    #[test]
    fn chrome_trace_parses_and_separates_clocks() {
        let trace = chrome_trace(&sample_obs());
        let value: Value = serde_json::from_str(&trace).expect("trace parses");
        let events = value
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        assert!(!events.is_empty());

        let span_on = |pid: u64| {
            events
                .iter()
                .filter(|e| {
                    e.get("ph").and_then(Value::as_str) == Some("X")
                        && e.get("pid").and_then(Value::as_u64) == Some(pid)
                })
                .count()
        };
        // Master + worker wall spans; worker modelled span; planned span.
        assert_eq!(span_on(1), 2);
        assert_eq!(span_on(2), 1);
        assert_eq!(span_on(3), 1);

        // Planned and actual worker rows share a tid for side-by-side
        // comparison.
        let tid_of = |pid: u64| {
            events
                .iter()
                .find(|e| {
                    e.get("ph").and_then(Value::as_str) == Some("X")
                        && e.get("pid").and_then(Value::as_u64) == Some(pid)
                })
                .and_then(|e| e.get("tid").and_then(Value::as_u64))
                .expect("span has tid")
        };
        assert_eq!(tid_of(2), tid_of(3));
    }

    #[test]
    fn disabled_obs_exports_are_empty_but_valid() {
        let obs = Obs::disabled();
        assert!(journal_jsonl(&obs).is_empty());
        assert!(metrics_text(&obs).contains("swdual_events_total 0"));
        let value: Value = serde_json::from_str(&chrome_trace(&obs)).expect("empty trace parses");
        assert_eq!(
            value
                .get("traceEvents")
                .and_then(Value::as_array)
                .map(Vec::len),
            Some(4)
        );
    }

    #[test]
    fn recovered_spans_get_their_own_process() {
        let obs = Obs::enabled();
        obs.virtual_span(Track::Recovered(1), "task-4", 0.5, 1.5, &[("task", 4.0)]);
        obs.instant(Track::Faults, "worker_dead", &[("worker", 0.0)]);
        let trace = chrome_trace(&obs);
        let value: Value = serde_json::from_str(&trace).expect("trace parses");
        let events = value
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        // The recovered placement is a span on pid 4, same tid scheme as
        // worker/planned rows.
        let recovered: Vec<&Value> = events
            .iter()
            .filter(|e| {
                e.get("ph").and_then(Value::as_str) == Some("X")
                    && e.get("pid").and_then(Value::as_u64) == Some(4)
            })
            .collect();
        assert_eq!(recovered.len(), 1);
        assert_eq!(
            recovered[0].get("tid").and_then(Value::as_u64),
            Some(11),
            "recovered row shares the worker tid scheme"
        );
        // The fault instant lands on the wall-clock process.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Value::as_str) == Some("i")
                && e.get("name").and_then(Value::as_str) == Some("worker_dead")
        }));
        // And the journal names both.
        let journal = journal_jsonl(&obs);
        assert!(journal.contains("recovered:1"));
        assert!(journal.contains("\"faults\""));
    }

    #[test]
    fn flow_events_follow_lineage_through_a_faulted_run() {
        // Task 0 is planned on worker 0, dispatched, worker 0 dies;
        // it is re-planned (recovered track), re-dispatched and run on
        // worker 1. The trace must carry a single flow (id 0): "s" at
        // the plan, "t" steps at both dispatches, "f" at the execution.
        let obs = Obs::enabled();
        obs.virtual_span(Track::Planned(0), "task-0", 0.0, 2.0, &[("task", 0.0)]);
        obs.instant(
            Track::Master,
            "task_dispatch",
            &[
                ("task", 0.0),
                ("worker", 0.0),
                ("seq", 0.0),
                ("decision", 0.0),
            ],
        );
        obs.instant(Track::Faults, "worker_death", &[("worker", 0.0)]);
        obs.virtual_span(Track::Recovered(1), "task-0", 0.5, 2.0, &[("task", 0.0)]);
        obs.instant(
            Track::Master,
            "task_dispatch",
            &[
                ("task", 0.0),
                ("worker", 1.0),
                ("seq", 1.0),
                ("decision", 1.0),
            ],
        );
        obs.span(
            Track::Worker(1),
            "task-0",
            0.3,
            0.2,
            Some((0.5, 2.0)),
            &[("task", 0.0), ("decision", 1.0)],
        );
        let trace = chrome_trace(&obs);
        let value: Value = serde_json::from_str(&trace).expect("trace parses");
        let events = value
            .get("traceEvents")
            .and_then(Value::as_array)
            .expect("traceEvents array");
        let flows: Vec<&Value> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Value::as_str) == Some("lineage"))
            .collect();
        let phases: Vec<&str> = flows
            .iter()
            .filter_map(|e| e.get("ph").and_then(Value::as_str))
            .collect();
        assert_eq!(phases, vec!["s", "t", "t", "f"], "{trace}");
        // One flow id threads the whole chain.
        assert!(flows
            .iter()
            .all(|e| e.get("id").and_then(Value::as_u64) == Some(0)));
        // The start rides the planned span; the end binds to the
        // enclosing execution slice.
        assert_eq!(flows[0].get("pid").and_then(Value::as_u64), Some(3));
        assert_eq!(
            flows.last().unwrap().get("bp").and_then(Value::as_str),
            Some("e")
        );
    }

    #[test]
    fn lineage_free_runs_emit_no_flow_arrows() {
        let trace = chrome_trace(&sample_obs());
        let value: Value = serde_json::from_str(&trace).expect("trace parses");
        let events = value.get("traceEvents").and_then(Value::as_array).unwrap();
        // sample_obs has a planned span without dispatches or task args
        // on the exec span... the planned span DOES carry task-0 via its
        // name, so a flow start may appear — but never an "f" without a
        // matching exec task. The invariant: no dangling "t"/"f" phases.
        assert!(!events
            .iter()
            .any(|e| e.get("cat").and_then(Value::as_str) == Some("lineage")
                && e.get("ph").and_then(Value::as_str) == Some("t")));
    }

    /// A profiled run: task span with phase children on a worker plus
    /// device kernel/transfer spans.
    fn profiled_obs() -> Obs {
        let obs = Obs::enabled();
        obs.set_profiling(true);
        obs.span(
            Track::Worker(0),
            "task-0",
            0.0,
            1.0,
            Some((0.0, 2.0)),
            &[("task", 0.0)],
        );
        obs.span(
            Track::Worker(0),
            "phase_profile_build",
            0.0,
            0.25,
            Some((0.0, 0.5)),
            &[("task", 0.0)],
        );
        obs.span(
            Track::Worker(0),
            "phase_dp_inner",
            0.25,
            0.7,
            Some((0.5, 1.4)),
            &[("task", 0.0)],
        );
        obs.span(
            Track::Device(1),
            "h2d_transfer",
            0.0,
            0.01,
            Some((0.0, 0.5)),
            &[("bytes", 1e6)],
        );
        obs.span(
            Track::Device(1),
            "kernel",
            0.01,
            0.02,
            Some((0.5, 1.0)),
            &[
                ("useful_cells", 1e9),
                ("padded_cells", 1.25e9),
                ("query_len", 200.0),
            ],
        );
        obs
    }

    #[test]
    fn folded_stacks_are_semicolon_frames_and_integer_micros() {
        let profile = Profile::from_obs(&profiled_obs());
        let folded = flamegraph_folded(&profile, ProfileClock::Wall);
        let lines: Vec<&str> = folded.lines().collect();
        assert!(!lines.is_empty());
        for line in &lines {
            let (stack, weight) = line.rsplit_once(' ').expect("stack <weight>");
            assert!(!stack.is_empty());
            let w: u64 = weight.parse().expect("integer microsecond weight");
            assert!(w > 0, "zero-weight stacks must be dropped");
        }
        // The phase leaf carries its self time: 0.7 s = 700000 µs.
        assert!(
            lines.contains(&"worker:0;task-0;dp_inner 700000"),
            "{folded}"
        );
        // Folded totals reconcile with the profile's root totals.
        let worker_micros: u64 = lines
            .iter()
            .filter(|l| l.starts_with("worker:0"))
            .map(|l| l.rsplit_once(' ').unwrap().1.parse::<u64>().unwrap())
            .sum();
        let expect = (profile.root_total("worker:0", ProfileClock::Wall) * 1e6).round() as u64;
        assert!(worker_micros.abs_diff(expect) <= lines.len() as u64);
        // The modelled clock is a different rendering of the same stacks.
        let modelled = flamegraph_folded(&profile, ProfileClock::Modelled);
        assert!(modelled.contains("worker:0;task-0;dp_inner 1400000"));
        assert!(modelled.contains("device:1;kernel 1000000"));
    }

    #[test]
    fn speedscope_document_parses_and_reconciles() {
        let profile = Profile::from_obs(&profiled_obs());
        let doc = speedscope_json(&profile);
        let value: Value = serde_json::from_str(&doc).expect("speedscope JSON parses");
        assert_eq!(
            value.get("$schema").and_then(Value::as_str),
            Some("https://www.speedscope.app/file-format-schema.json")
        );
        let frames = value
            .get("shared")
            .and_then(|s| s.get("frames"))
            .and_then(Value::as_array)
            .expect("shared.frames");
        assert!(frames
            .iter()
            .all(|f| f.get("name").and_then(Value::as_str).is_some()));
        let profiles = value
            .get("profiles")
            .and_then(Value::as_array)
            .expect("profiles");
        assert_eq!(profiles.len(), 2, "wall + modelled");
        for p in profiles {
            assert_eq!(p.get("type").and_then(Value::as_str), Some("sampled"));
            assert_eq!(p.get("unit").and_then(Value::as_str), Some("seconds"));
            let samples = p.get("samples").and_then(Value::as_array).unwrap();
            let weights = p.get("weights").and_then(Value::as_array).unwrap();
            assert_eq!(samples.len(), weights.len());
            // Every sample indexes into the shared frame table.
            for sample in samples {
                for idx in sample.as_array().unwrap() {
                    assert!((idx.as_u64().unwrap() as usize) < frames.len());
                }
            }
            // endValue equals the sum of weights.
            let total: f64 = weights.iter().filter_map(Value::as_f64).sum();
            let end = p.get("endValue").and_then(Value::as_f64).unwrap();
            assert!((total - end).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_profile_exports_are_valid() {
        let profile = Profile::from_events(&[]);
        assert!(flamegraph_folded(&profile, ProfileClock::Wall).is_empty());
        let value: Value =
            serde_json::from_str(&speedscope_json(&profile)).expect("empty speedscope parses");
        let profiles = value.get("profiles").and_then(Value::as_array).unwrap();
        assert_eq!(profiles.len(), 2);
        for p in profiles {
            assert_eq!(
                p.get("samples").and_then(Value::as_array).map(Vec::len),
                Some(0)
            );
        }
    }
}
