//! Post-run schedule auditor: fold a journal into a [`RunReport`].
//!
//! The dual-approximation master promises makespan ≤ 2·λ; this module
//! checks what a *specific run* actually delivered. It consumes either
//! a live recorder ([`analyze_obs`]) or a JSON-lines journal written by
//! [`export::journal_jsonl`](crate::export::journal_jsonl)
//! ([`analyze_journal`]) and reports:
//!
//! * achieved makespan on both clocks, against λ and the 2λ bound;
//! * per-worker busy time, utilization and the load-imbalance ratio;
//! * planned-vs-actual completion skew per placement;
//! * the critical-path job (the one that finishes last on the modelled
//!   clock);
//! * how well the GPU side respected the acceleration-ratio ordering
//!   the knapsack argues from (`p_cpu/p_gpu` high → GPU);
//! * exact job-latency quantiles and fault/re-dispatch counts.
//!
//! Journals start with a `{"schema":"swdual-journal/2",...}` header
//! line (the previous `swdual-journal/1` still parses); anything else
//! is rejected with a typed [`AnalysisError`] instead of garbage
//! output.

use crate::{Event, EventKind, Obs, Track};
use serde::Serialize;
use std::collections::BTreeMap;

// The schema tag, the header check and the line parser live in
// [`crate::journal`], shared with the profiler and the differ; the
// historical `analysis::` names keep working.
pub use crate::journal::{parse_journal, JournalError as AnalysisError, JOURNAL_SCHEMA};

/// One worker's share of the run.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerAudit {
    /// Worker id.
    pub worker: usize,
    /// Whether it registered as a GPU worker (false when the journal
    /// has no registration events).
    pub is_gpu: bool,
    /// Device class the master journaled for this worker (`c2050`,
    /// `phi`, `knl`, `bioseal`, `custom` for an unrecognised GPU,
    /// `cpu` for a host worker; empty when the journal predates class
    /// tagging).
    pub device_class: String,
    /// Jobs it completed.
    pub tasks: usize,
    /// Sum of job wall durations (seconds).
    pub busy_wall: f64,
    /// Sum of job modelled durations (seconds).
    pub busy_modelled: f64,
    /// `busy_wall` / wall makespan.
    pub utilization_wall: f64,
    /// `busy_modelled` / modelled makespan.
    pub utilization_modelled: f64,
    /// Mean throughput over its busy wall time, in MCUPS (0 when the
    /// journal carries no cell counts).
    pub mcups: f64,
    /// Total wall seconds its jobs sat between dispatch and execution
    /// start (0 when the journal predates lineage tagging).
    pub queue_wait_wall: f64,
    /// Total modelled seconds between dispatch stamp and modelled
    /// start — nonzero only when a re-plan handed work to a worker
    /// whose modelled clock had already run past the stamp.
    pub queue_wait_modelled: f64,
}

/// Exact latency quantiles over completed jobs.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LatencyStats {
    /// Number of jobs observed.
    pub count: usize,
    /// Median job duration (seconds).
    pub p50: f64,
    /// 95th-percentile job duration (seconds).
    pub p95: f64,
    /// 99th-percentile job duration (seconds).
    pub p99: f64,
    /// Slowest job (seconds).
    pub max: f64,
    /// Mean job duration (seconds).
    pub mean: f64,
}

impl LatencyStats {
    fn from_durations(mut durations: Vec<f64>) -> LatencyStats {
        if durations.is_empty() {
            return LatencyStats::default();
        }
        durations.sort_by(f64::total_cmp);
        let n = durations.len();
        let at = |q: f64| {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            durations[rank - 1]
        };
        LatencyStats {
            count: n,
            p50: at(0.50),
            p95: at(0.95),
            p99: at(0.99),
            max: durations[n - 1],
            mean: durations.iter().sum::<f64>() / n as f64,
        }
    }
}

/// Planned-vs-actual completion skew on the modelled clock.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SkewStats {
    /// Placements with both a planned and an actual span.
    pub tasks_compared: usize,
    /// Mean |actual completion − planned completion| (seconds).
    pub mean_abs: f64,
    /// Largest |actual − planned| completion gap (seconds).
    pub max_abs: f64,
    /// Task id behind `max_abs` (−1 when nothing compared).
    pub max_task: i64,
}

/// One fault-track event name and how often it fired.
#[derive(Debug, Clone, Serialize)]
pub struct FaultCount {
    /// Event name (e.g. `worker_death`, `task_redispatch`).
    pub name: String,
    /// Occurrences.
    pub count: usize,
}

/// Everything the auditor can say about one run.
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Schema the analyzed journal declared.
    pub schema: String,
    /// Distinct tasks that completed on some worker.
    pub tasks: usize,
    /// Per-worker breakdown, ascending by worker id.
    pub workers: Vec<WorkerAudit>,
    /// Wall-clock execution window: latest job end − earliest job
    /// start (seconds).
    pub wall_makespan: f64,
    /// Modelled makespan: latest modelled job completion (seconds) —
    /// the clock the paper's bound is stated in.
    pub modelled_makespan: f64,
    /// Latest planned completion (seconds; 0 without a static plan).
    pub planned_makespan: f64,
    /// Final λ of the binary search (the smallest feasible guess).
    pub lambda: f64,
    /// Final proven lower bound on the optimal makespan.
    pub lower_bound: f64,
    /// The guarantee the dual approximation gives: 2·λ.
    pub two_lambda_bound: f64,
    /// Whether the journal carries scheduler λ information at all
    /// (false under pure self-scheduling).
    pub has_bound: bool,
    /// `modelled_makespan ≤ two_lambda_bound` (false when no bound).
    pub bound_holds: bool,
    /// `two_lambda_bound − modelled_makespan` (seconds; how much
    /// headroom the run left under the guarantee).
    pub bound_margin: f64,
    /// Binary-search iterations the scheduler spent.
    pub binsearch_iterations: usize,
    /// Max worker modelled busy time over the mean (1.0 = perfectly
    /// balanced).
    pub load_imbalance: f64,
    /// Task finishing last on the modelled clock (−1 when no jobs).
    pub critical_task: i64,
    /// Worker that ran the critical task (−1 when no jobs).
    pub critical_worker: i64,
    /// Exact wall-clock job-latency quantiles.
    pub wall_latency: LatencyStats,
    /// Exact modelled-clock job-latency quantiles.
    pub modelled_latency: LatencyStats,
    /// Planned-vs-actual completion skew.
    pub skew: SkewStats,
    /// Fraction of (GPU-task, CPU-task) pairs in the plan where the
    /// GPU task has the higher acceleration ratio `p_cpu/p_gpu` — 1.0
    /// means the knapsack's ordering argument held perfectly (also 1.0
    /// when the journal lacks the data to judge).
    pub gpu_ordering_quality: f64,
    /// Distinct tasks that appear on recovered (re-planned) tracks.
    pub moved_tasks: usize,
    /// Online re-optimization rounds the master journaled
    /// (`reopt_replan` events on the fault track).
    pub reopt_replans: usize,
    /// Fault-track event counts by name.
    pub faults: Vec<FaultCount>,
    /// Watchdog alert counts by kind (`alert_*` fault-track instants,
    /// prefix stripped). Kept apart from `faults`: alerts are the
    /// watchdog's commentary about the run, not injected or detected
    /// faults themselves.
    pub alerts: Vec<FaultCount>,
}

fn arg(event: &Event, key: &str) -> Option<f64> {
    event.args.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

/// Fold a recorded event stream into a [`RunReport`].
pub fn analyze_obs(obs: &Obs) -> RunReport {
    analyze_events(&obs.events())
}

/// Parse and fold a JSON-lines journal (with schema header) into a
/// [`RunReport`].
pub fn analyze_journal(journal: &str) -> Result<RunReport, AnalysisError> {
    let events = parse_journal(journal)?;
    Ok(analyze_events(&events))
}

/// The fold itself: one pass over events, then derived quantities.
pub fn analyze_events(events: &[Event]) -> RunReport {
    // Per-worker accumulation from actual job spans.
    struct Acc {
        is_gpu: bool,
        tasks: usize,
        busy_wall: f64,
        busy_modelled: f64,
        cells: f64,
        queue_wait_wall: f64,
        queue_wait_modelled: f64,
    }
    let mut workers: BTreeMap<usize, Acc> = BTreeMap::new();
    fn acc(workers: &mut BTreeMap<usize, Acc>, w: usize) -> &mut Acc {
        workers.entry(w).or_insert(Acc {
            is_gpu: false,
            tasks: 0,
            busy_wall: 0.0,
            busy_modelled: 0.0,
            cells: 0.0,
            queue_wait_wall: 0.0,
            queue_wait_modelled: 0.0,
        })
    }

    let mut wall_durations: Vec<f64> = Vec::new();
    let mut modelled_durations: Vec<f64> = Vec::new();
    let mut wall_lo = f64::INFINITY;
    let mut wall_hi = f64::NEG_INFINITY;
    let mut modelled_makespan = 0.0f64;
    let mut critical: Option<(f64, i64, i64)> = None; // (end, task, worker)
    let mut planned_makespan = 0.0f64;
    // task → (planned completion, actual completion) on the modelled clock
    let mut planned_end: BTreeMap<i64, f64> = BTreeMap::new();
    let mut actual_end: BTreeMap<i64, f64> = BTreeMap::new();
    // task → planned species (true = GPU)
    let mut planned_on_gpu: BTreeMap<i64, bool> = BTreeMap::new();
    let mut model: BTreeMap<i64, (f64, f64)> = BTreeMap::new(); // task → (p_cpu, p_gpu)
    let mut registered_gpu: BTreeMap<usize, bool> = BTreeMap::new();
    let mut device_classes: BTreeMap<usize, String> = BTreeMap::new();
    let mut moved: Vec<i64> = Vec::new();
    let mut faults: BTreeMap<String, usize> = BTreeMap::new();
    let mut alerts: BTreeMap<String, usize> = BTreeMap::new();
    let mut done_tasks: Vec<i64> = Vec::new();
    let mut lambda = 0.0f64;
    let mut lower_bound = 0.0f64;
    let mut iterations = 0usize;
    let mut has_bound = false;

    let task_of = |event: &Event| -> i64 {
        arg(event, "task")
            .map(|t| t as i64)
            .or_else(|| {
                event
                    .name
                    .strip_prefix("task-")
                    .and_then(|s| s.parse().ok())
            })
            .unwrap_or(-1)
    };

    for event in events {
        match event.track {
            Track::Worker(w) if event.kind == EventKind::Span => {
                // Profiling phase spans subdivide a task span that is
                // itself in the journal; counting them again would
                // inflate busy time and the latency quantiles.
                if event.is_profile_detail() {
                    continue;
                }
                let a = acc(&mut workers, w);
                a.tasks += 1;
                a.busy_wall += event.wall_dur;
                a.cells += arg(event, "cells").unwrap_or(0.0);
                a.queue_wait_wall += arg(event, "queue_wait_wall").unwrap_or(0.0);
                a.queue_wait_modelled += arg(event, "queue_wait_modelled").unwrap_or(0.0);
                wall_durations.push(event.wall_dur);
                wall_lo = wall_lo.min(event.wall_start);
                wall_hi = wall_hi.max(event.wall_start + event.wall_dur);
                let task = task_of(event);
                done_tasks.push(task);
                if let (Some(vs), Some(vd)) = (event.virt_start, event.virt_dur) {
                    let a = acc(&mut workers, w);
                    a.busy_modelled += vd;
                    modelled_durations.push(vd);
                    let end = vs + vd;
                    actual_end
                        .entry(task)
                        .and_modify(|e| *e = e.max(end))
                        .or_insert(end);
                    modelled_makespan = modelled_makespan.max(end);
                    if critical.map(|(e, ..)| end > e).unwrap_or(true) {
                        critical = Some((end, task, w as i64));
                    }
                }
            }
            Track::Planned(w) => {
                if let (Some(vs), Some(vd)) = (event.virt_start, event.virt_dur) {
                    let end = vs + vd;
                    planned_makespan = planned_makespan.max(end);
                    let task = task_of(event);
                    planned_end
                        .entry(task)
                        .and_modify(|e| *e = e.max(end))
                        .or_insert(end);
                    if let Some(&gpu) = registered_gpu.get(&w) {
                        planned_on_gpu.insert(task, gpu);
                    }
                }
            }
            Track::Recovered(_) => {
                moved.push(task_of(event));
            }
            Track::Faults => {
                if let Some(kind) = event.name.strip_prefix("alert_") {
                    *alerts.entry(kind.replace('_', "-")).or_insert(0) += 1;
                } else {
                    *faults.entry(event.name.clone()).or_insert(0) += 1;
                }
            }
            Track::Scheduler if event.name == "binsearch_done" => {
                has_bound = true;
                lambda = arg(event, "lambda")
                    .or_else(|| arg(event, "upper_bound"))
                    .unwrap_or(0.0);
                lower_bound = arg(event, "lower_bound").unwrap_or(0.0);
                iterations = arg(event, "iterations").unwrap_or(0.0) as usize;
            }
            Track::Master if event.name == "worker_registered" => {
                if let Some(w) = arg(event, "worker") {
                    registered_gpu.insert(w as usize, arg(event, "is_gpu") == Some(1.0));
                }
            }
            Track::Master if event.name.starts_with("device_class:") => {
                if let Some(w) = arg(event, "worker") {
                    device_classes
                        .insert(w as usize, event.name["device_class:".len()..].to_string());
                }
            }
            Track::Master if event.name == "task_model" => {
                if let Some(t) = arg(event, "task") {
                    model.insert(
                        t as i64,
                        (
                            arg(event, "p_cpu").unwrap_or(0.0),
                            arg(event, "p_gpu").unwrap_or(0.0),
                        ),
                    );
                }
            }
            _ => {}
        }
    }

    // Registration marks workers (and their species) even when they
    // never ran a job — they still count toward balance.
    for (&w, &gpu) in &registered_gpu {
        acc(&mut workers, w).is_gpu = gpu;
    }

    let wall_makespan = if wall_hi > wall_lo {
        wall_hi - wall_lo
    } else {
        0.0
    };
    let two_lambda_bound = 2.0 * lambda;
    let bound_holds = has_bound && modelled_makespan <= two_lambda_bound * (1.0 + 1e-9) + 1e-12;

    let n_workers = workers.len().max(1);
    let mean_busy = workers.values().map(|a| a.busy_modelled).sum::<f64>() / n_workers as f64;
    let max_busy = workers
        .values()
        .map(|a| a.busy_modelled)
        .fold(0.0, f64::max);
    let load_imbalance = if mean_busy > 0.0 {
        max_busy / mean_busy
    } else {
        1.0
    };

    let worker_audits: Vec<WorkerAudit> = workers
        .iter()
        .map(|(&worker, a)| WorkerAudit {
            worker,
            is_gpu: a.is_gpu,
            device_class: device_classes.get(&worker).cloned().unwrap_or_default(),
            tasks: a.tasks,
            busy_wall: a.busy_wall,
            busy_modelled: a.busy_modelled,
            utilization_wall: if wall_makespan > 0.0 {
                a.busy_wall / wall_makespan
            } else {
                0.0
            },
            utilization_modelled: if modelled_makespan > 0.0 {
                a.busy_modelled / modelled_makespan
            } else {
                0.0
            },
            mcups: if a.busy_wall > 0.0 {
                a.cells / a.busy_wall / 1e6
            } else {
                0.0
            },
            queue_wait_wall: a.queue_wait_wall,
            queue_wait_modelled: a.queue_wait_modelled,
        })
        .collect();

    // Skew: tasks with both a planned and an actual completion.
    let mut abs_skews: Vec<(f64, i64)> = Vec::new();
    for (task, planned) in &planned_end {
        if let Some(actual) = actual_end.get(task) {
            abs_skews.push(((actual - planned).abs(), *task));
        }
    }
    let skew = if abs_skews.is_empty() {
        SkewStats::default()
    } else {
        let (max_abs, max_task) =
            abs_skews.iter().cloned().fold(
                (0.0, -1),
                |best, (s, t)| if s > best.0 { (s, t) } else { best },
            );
        SkewStats {
            tasks_compared: abs_skews.len(),
            mean_abs: abs_skews.iter().map(|(s, _)| s).sum::<f64>() / abs_skews.len() as f64,
            max_abs,
            max_task,
        }
    };

    // Acceleration-ratio ordering: every planned (GPU task, CPU task)
    // pair should have ratio(gpu) ≥ ratio(cpu).
    let ratio = |t: i64| -> Option<f64> {
        let (p_cpu, p_gpu) = model.get(&t)?;
        if *p_gpu > 0.0 {
            Some(p_cpu / p_gpu)
        } else {
            None
        }
    };
    let gpu_ratios: Vec<f64> = planned_on_gpu
        .iter()
        .filter(|(_, gpu)| **gpu)
        .filter_map(|(t, _)| ratio(*t))
        .collect();
    let cpu_ratios: Vec<f64> = planned_on_gpu
        .iter()
        .filter(|(_, gpu)| !**gpu)
        .filter_map(|(t, _)| ratio(*t))
        .collect();
    let pairs = gpu_ratios.len() * cpu_ratios.len();
    let gpu_ordering_quality = if pairs == 0 {
        1.0
    } else {
        let good: usize = gpu_ratios
            .iter()
            .map(|g| cpu_ratios.iter().filter(|c| *g >= **c).count())
            .sum();
        good as f64 / pairs as f64
    };

    done_tasks.sort_unstable();
    done_tasks.dedup();
    moved.sort_unstable();
    moved.dedup();

    RunReport {
        schema: JOURNAL_SCHEMA.to_string(),
        tasks: done_tasks.len(),
        workers: worker_audits,
        wall_makespan,
        modelled_makespan,
        planned_makespan,
        lambda,
        lower_bound,
        two_lambda_bound,
        has_bound,
        bound_holds,
        bound_margin: two_lambda_bound - modelled_makespan,
        binsearch_iterations: iterations,
        load_imbalance,
        critical_task: critical.map(|(_, t, _)| t).unwrap_or(-1),
        critical_worker: critical.map(|(_, _, w)| w).unwrap_or(-1),
        wall_latency: LatencyStats::from_durations(wall_durations),
        modelled_latency: LatencyStats::from_durations(modelled_durations),
        skew,
        gpu_ordering_quality,
        moved_tasks: moved.len(),
        reopt_replans: faults.get("reopt_replan").copied().unwrap_or(0),
        faults: faults
            .into_iter()
            .map(|(name, count)| FaultCount { name, count })
            .collect(),
        alerts: alerts
            .into_iter()
            .map(|(name, count)| FaultCount { name, count })
            .collect(),
    }
}

impl RunReport {
    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Human-readable rendering for terminals.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("run report ({})", self.schema));
        line(format!(
            "  tasks completed        {} on {} workers",
            self.tasks,
            self.workers.len()
        ));
        line(format!(
            "  makespan               {:.6} s wall · {:.6} s modelled · {:.6} s planned",
            self.wall_makespan, self.modelled_makespan, self.planned_makespan
        ));
        if self.has_bound {
            line(format!(
                "  dual approximation     λ = {:.6} s · 2λ bound = {:.6} s · lower bound = {:.6} s",
                self.lambda, self.two_lambda_bound, self.lower_bound
            ));
            line(format!(
                "  2λ guarantee           {} (margin {:.6} s, {} binary-search iterations)",
                if self.bound_holds {
                    "HOLDS"
                } else {
                    "VIOLATED"
                },
                self.bound_margin,
                self.binsearch_iterations
            ));
        } else {
            line("  dual approximation     no λ in journal (self-scheduling run?)".to_string());
        }
        line(format!(
            "  load imbalance         {:.3}× (max/mean modelled busy)",
            self.load_imbalance
        ));
        if self.critical_task >= 0 {
            line(format!(
                "  critical path          task {} on worker {}",
                self.critical_task, self.critical_worker
            ));
        }
        line(format!(
            "  job latency (wall)     p50 {:.6} s · p95 {:.6} s · p99 {:.6} s · max {:.6} s",
            self.wall_latency.p50,
            self.wall_latency.p95,
            self.wall_latency.p99,
            self.wall_latency.max
        ));
        line(format!(
            "  job latency (modelled) p50 {:.6} s · p95 {:.6} s · p99 {:.6} s · max {:.6} s",
            self.modelled_latency.p50,
            self.modelled_latency.p95,
            self.modelled_latency.p99,
            self.modelled_latency.max
        ));
        if self.skew.tasks_compared > 0 {
            line(format!(
                "  plan-vs-actual skew    mean |Δ| {:.6} s · max |Δ| {:.6} s (task {})",
                self.skew.mean_abs, self.skew.max_abs, self.skew.max_task
            ));
        }
        line(format!(
            "  GPU ordering quality   {:.1}% of (gpu, cpu) pairs respect the acceleration ratio",
            100.0 * self.gpu_ordering_quality
        ));
        if self.reopt_replans > 0 {
            line(format!(
                "  re-optimization        {} re-plan round(s) on observed ratios",
                self.reopt_replans
            ));
        }
        if !self.alerts.is_empty() {
            let alert_list = self
                .alerts
                .iter()
                .map(|a| format!("{}×{}", a.count, a.name))
                .collect::<Vec<_>>()
                .join(", ");
            line(format!("  watchdog alerts        {alert_list}"));
        }
        if self.moved_tasks > 0 || !self.faults.is_empty() {
            let fault_list = self
                .faults
                .iter()
                .map(|f| format!("{}×{}", f.count, f.name))
                .collect::<Vec<_>>()
                .join(", ");
            line(format!(
                "  fault recovery         {} task(s) re-planned · events: {}",
                self.moved_tasks,
                if fault_list.is_empty() {
                    "none".to_string()
                } else {
                    fault_list
                }
            ));
        }
        line("  workers:".to_string());
        for w in &self.workers {
            let species = if w.device_class.is_empty() {
                if w.is_gpu { "gpu" } else { "cpu" }.to_string()
            } else if w.is_gpu {
                format!("gpu[{}]", w.device_class)
            } else {
                w.device_class.clone()
            };
            let queue = if w.queue_wait_wall > 0.0 || w.queue_wait_modelled > 0.0 {
                format!(
                    " · queued {:.6} s wall / {:.6} s modelled",
                    w.queue_wait_wall, w.queue_wait_modelled
                )
            } else {
                String::new()
            };
            line(format!(
                "    {:>3} {}  {:>4} tasks · busy {:.6} s wall ({:.1}%) · {:.6} s modelled ({:.1}%) · {:.1} MCUPS{}",
                w.worker,
                species,
                w.tasks,
                w.busy_wall,
                100.0 * w.utilization_wall,
                w.busy_modelled,
                100.0 * w.utilization_modelled,
                w.mcups,
                queue
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built run: 2 workers (0 = CPU, 1 = GPU), 3 tasks, a plan
    /// and a λ.
    fn sample_obs() -> Obs {
        let obs = Obs::enabled();
        obs.instant(
            Track::Master,
            "worker_registered",
            &[("worker", 0.0), ("is_gpu", 0.0)],
        );
        obs.instant(
            Track::Master,
            "worker_registered",
            &[("worker", 1.0), ("is_gpu", 1.0)],
        );
        for (t, p_cpu, p_gpu) in [(0, 8.0, 2.0), (1, 6.0, 2.0), (2, 3.0, 2.5)] {
            obs.instant(
                Track::Master,
                "task_model",
                &[("task", t as f64), ("p_cpu", p_cpu), ("p_gpu", p_gpu)],
            );
        }
        obs.instant(
            Track::Scheduler,
            "binsearch_done",
            &[
                ("iterations", 12.0),
                ("lower_bound", 3.5),
                ("upper_bound", 4.0),
                ("makespan", 4.0),
                ("lambda", 4.0),
                ("two_lambda_bound", 8.0),
            ],
        );
        // Plan: tasks 0 and 1 on the GPU, task 2 on the CPU.
        obs.virtual_span(Track::Planned(1), "task-0", 0.0, 2.0, &[("task", 0.0)]);
        obs.virtual_span(Track::Planned(1), "task-1", 2.0, 2.0, &[("task", 1.0)]);
        obs.virtual_span(Track::Planned(0), "task-2", 0.0, 3.0, &[("task", 2.0)]);
        // Actual: GPU slightly late on task 1, CPU on plan.
        obs.span(
            Track::Worker(1),
            "task-0",
            0.1,
            0.2,
            Some((0.0, 2.0)),
            &[("task", 0.0), ("cells", 2.0e6)],
        );
        obs.span(
            Track::Worker(1),
            "task-1",
            0.3,
            0.3,
            Some((2.0, 2.5)),
            &[("task", 1.0), ("cells", 2.0e6)],
        );
        obs.span(
            Track::Worker(0),
            "task-2",
            0.1,
            0.4,
            Some((0.0, 3.0)),
            &[("task", 2.0), ("cells", 1.0e6)],
        );
        obs
    }

    #[test]
    fn device_classes_and_replans_are_reported() {
        let obs = sample_obs();
        obs.instant(Track::Master, "device_class:cpu", &[("worker", 0.0)]);
        obs.instant(Track::Master, "device_class:bioseal", &[("worker", 1.0)]);
        obs.instant(
            Track::Faults,
            "reopt_replan",
            &[("round", 1.0), ("remaining", 2.0), ("skew", 3.0)],
        );
        let r = analyze_obs(&obs);
        assert_eq!(r.workers[0].device_class, "cpu");
        assert_eq!(r.workers[1].device_class, "bioseal");
        assert_eq!(r.reopt_replans, 1);
        let text = r.to_text();
        assert!(text.contains("gpu[bioseal]"), "{text}");
        assert!(text.contains("re-optimization"), "{text}");
        // JSON carries the class for machine consumers.
        assert!(r.to_json().contains("\"device_class\": \"bioseal\""));
    }

    #[test]
    fn untagged_journals_keep_an_empty_device_class() {
        let r = analyze_obs(&sample_obs());
        assert!(r.workers.iter().all(|w| w.device_class.is_empty()));
        assert_eq!(r.reopt_replans, 0);
        let text = r.to_text();
        assert!(!text.contains("re-optimization"));
    }

    #[test]
    fn report_measures_the_sample_run() {
        let r = analyze_obs(&sample_obs());
        assert_eq!(r.tasks, 3);
        assert_eq!(r.workers.len(), 2);
        assert!((r.modelled_makespan - 4.5).abs() < 1e-12);
        assert!((r.planned_makespan - 4.0).abs() < 1e-12);
        // wall: earliest start 0.1, latest end 0.6
        assert!((r.wall_makespan - 0.5).abs() < 1e-12);
        assert!(r.has_bound);
        assert!((r.lambda - 4.0).abs() < 1e-12);
        assert!((r.two_lambda_bound - 8.0).abs() < 1e-12);
        assert!(r.bound_holds);
        assert!((r.bound_margin - 3.5).abs() < 1e-12);
        assert_eq!(r.binsearch_iterations, 12);
        assert_eq!(r.critical_task, 1);
        assert_eq!(r.critical_worker, 1);
        // GPU busy 4.5, CPU busy 3.0 → imbalance 4.5/3.75
        assert!((r.load_imbalance - 4.5 / 3.75).abs() < 1e-12);
        // Skew: task 1 finished 0.5 late, others on time.
        assert_eq!(r.skew.tasks_compared, 3);
        assert!((r.skew.max_abs - 0.5).abs() < 1e-12);
        assert_eq!(r.skew.max_task, 1);
        // GPU tasks have ratios 4.0 and 3.0; CPU task 1.2 → all pairs good.
        assert!((r.gpu_ordering_quality - 1.0).abs() < 1e-12);
        assert_eq!(r.moved_tasks, 0);
        assert!(r.faults.is_empty());
        // Worker audit sanity.
        let gpu = r.workers.iter().find(|w| w.worker == 1).unwrap();
        assert!(gpu.is_gpu);
        assert_eq!(gpu.tasks, 2);
        assert!((gpu.busy_modelled - 4.5).abs() < 1e-12);
        assert!((gpu.utilization_modelled - 1.0).abs() < 1e-12);
        assert!((gpu.mcups - 4.0e6 / 0.5 / 1e6).abs() < 1e-9);
    }

    #[test]
    fn journal_round_trip_equals_direct_analysis() {
        let obs = sample_obs();
        let journal = crate::export::journal_jsonl(&obs);
        let direct = analyze_obs(&obs);
        let parsed = analyze_journal(&journal).expect("journal analyzes");
        assert_eq!(parsed.to_json(), direct.to_json());
    }

    #[test]
    fn ordering_quality_flags_inverted_placements() {
        let obs = Obs::enabled();
        obs.instant(
            Track::Master,
            "worker_registered",
            &[("worker", 0.0), ("is_gpu", 0.0)],
        );
        obs.instant(
            Track::Master,
            "worker_registered",
            &[("worker", 1.0), ("is_gpu", 1.0)],
        );
        // Task 0 barely accelerated, task 1 strongly accelerated —
        // but the plan puts 0 on the GPU and 1 on the CPU.
        obs.instant(
            Track::Master,
            "task_model",
            &[("task", 0.0), ("p_cpu", 2.0), ("p_gpu", 1.9)],
        );
        obs.instant(
            Track::Master,
            "task_model",
            &[("task", 1.0), ("p_cpu", 10.0), ("p_gpu", 1.0)],
        );
        obs.virtual_span(Track::Planned(1), "task-0", 0.0, 1.9, &[("task", 0.0)]);
        obs.virtual_span(Track::Planned(0), "task-1", 0.0, 10.0, &[("task", 1.0)]);
        let r = analyze_obs(&obs);
        assert_eq!(r.gpu_ordering_quality, 0.0);
    }

    #[test]
    fn missing_header_is_rejected() {
        let obs = sample_obs();
        let journal = crate::export::journal_jsonl(&obs);
        let headerless: String = journal.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert_eq!(
            analyze_journal(&headerless).unwrap_err(),
            AnalysisError::MissingHeader
        );
        assert_eq!(
            analyze_journal("").unwrap_err(),
            AnalysisError::EmptyJournal
        );
    }

    #[test]
    fn wrong_schema_is_rejected_with_its_name() {
        let journal = "{\"schema\":\"swdual-journal/99\",\"events\":0}\n";
        match analyze_journal(journal).unwrap_err() {
            AnalysisError::SchemaMismatch { found, expected } => {
                assert_eq!(found, "swdual-journal/99");
                assert!(expected.contains(JOURNAL_SCHEMA), "{expected}");
                assert!(expected.contains("swdual-journal/1"), "{expected}");
            }
            other => panic!("expected schema mismatch, got {other:?}"),
        }
    }

    #[test]
    fn malformed_line_reports_its_number() {
        let journal = format!("{{\"schema\":\"{JOURNAL_SCHEMA}\",\"events\":1}}\nnot json\n");
        match analyze_journal(&journal).unwrap_err() {
            AnalysisError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("expected malformed, got {other:?}"),
        }
    }

    #[test]
    fn fault_and_recovery_events_are_counted() {
        let obs = Obs::enabled();
        obs.instant(Track::Faults, "worker_death", &[("worker", 1.0)]);
        obs.instant(Track::Faults, "task_redispatch", &[("task", 2.0)]);
        obs.instant(Track::Faults, "task_redispatch", &[("task", 3.0)]);
        obs.virtual_span(Track::Recovered(0), "task-2", 0.0, 1.0, &[("task", 2.0)]);
        obs.virtual_span(Track::Recovered(0), "task-3", 1.0, 1.0, &[("task", 3.0)]);
        let r = analyze_obs(&obs);
        assert_eq!(r.moved_tasks, 2);
        let deaths = r.faults.iter().find(|f| f.name == "worker_death").unwrap();
        assert_eq!(deaths.count, 1);
        let redispatch = r
            .faults
            .iter()
            .find(|f| f.name == "task_redispatch")
            .unwrap();
        assert_eq!(redispatch.count, 2);
    }

    #[test]
    fn alert_instants_are_counted_apart_from_faults() {
        let obs = crate::Obs::enabled();
        obs.instant(Track::Faults, "worker_death", &[("worker", 0.0)]);
        obs.instant(
            Track::Faults,
            "alert_straggler",
            &[("worker", 1.0), ("value", 3.0), ("threshold", 2.0)],
        );
        obs.instant(
            Track::Faults,
            "alert_straggler",
            &[("worker", 2.0), ("value", 2.2), ("threshold", 2.0)],
        );
        obs.instant(Track::Faults, "alert_bound_at_risk", &[("value", 1.9)]);
        let r = analyze_obs(&obs);
        // Alerts never pollute the fault counts…
        assert_eq!(r.faults.len(), 1);
        assert_eq!(r.faults[0].name, "worker_death");
        // …and surface under their own heading, kinds hyphenated.
        let straggler = r.alerts.iter().find(|a| a.name == "straggler").unwrap();
        assert_eq!(straggler.count, 2);
        assert!(r.alerts.iter().any(|a| a.name == "bound-at-risk"));
        let text = r.to_text();
        assert!(text.contains("watchdog alerts"), "{text}");
        assert!(text.contains("2×straggler"), "{text}");
        assert!(text.contains("1×bound-at-risk"), "{text}");
        // JSON report carries the alerts field.
        let json = r.to_json();
        assert!(json.contains("\"alerts\""), "{json}");
    }

    #[test]
    fn empty_run_yields_a_quiet_report() {
        let r = analyze_events(&[]);
        assert_eq!(r.tasks, 0);
        assert_eq!(r.critical_task, -1);
        assert!(!r.has_bound);
        assert!(!r.bound_holds);
        assert_eq!(r.wall_latency.count, 0);
        assert_eq!(r.load_imbalance, 1.0);
        // Both renderings still work.
        assert!(r.to_json().contains("\"tasks\""));
        assert!(r.to_text().contains("run report"));
    }

    #[test]
    fn header_only_journal_renders_without_nan_or_inf() {
        // A run that recorded nothing but the schema header (e.g. obs
        // enabled, zero tasks completed before a crash) must analyze
        // to a quiet report, not NaN-ridden text.
        let journal = format!("{{\"schema\":\"{JOURNAL_SCHEMA}\",\"events\":0}}\n");
        let r = analyze_journal(&journal).expect("header-only journal analyzes");
        assert_eq!(r.tasks, 0);
        assert_eq!(r.workers.len(), 0);
        assert_eq!(r.load_imbalance, 1.0);
        let text = r.to_text();
        assert!(
            !text.contains("NaN") && !text.contains("inf"),
            "text rendering leaked a non-finite number:\n{text}"
        );
        let json = r.to_json();
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn zero_completed_tasks_with_registered_workers_stays_finite() {
        // Workers registered but died before completing anything:
        // utilization and MCUPS divide by zero-ish quantities.
        let obs = Obs::enabled();
        for w in 0..2 {
            obs.instant(
                Track::Master,
                "worker_registered",
                &[("worker", w as f64), ("is_gpu", 0.0)],
            );
        }
        let r = analyze_obs(&obs);
        assert_eq!(r.workers.len(), 2);
        for w in &r.workers {
            assert!(w.utilization_wall.is_finite());
            assert!(w.utilization_modelled.is_finite());
            assert!(w.mcups.is_finite());
        }
        let text = r.to_text();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    }

    #[test]
    fn profiling_detail_spans_do_not_double_count_busy_time() {
        let obs = Obs::enabled();
        obs.span(
            Track::Worker(0),
            "task-0",
            0.0,
            1.0,
            Some((0.0, 2.0)),
            &[("task", 0.0)],
        );
        obs.span(
            Track::Worker(0),
            "phase_dp_inner",
            0.0,
            0.9,
            Some((0.0, 1.8)),
            &[("task", 0.0)],
        );
        let r = analyze_obs(&obs);
        let w = &r.workers[0];
        assert_eq!(w.tasks, 1, "phase span must not count as a job");
        assert!((w.busy_wall - 1.0).abs() < 1e-12);
        assert!((w.busy_modelled - 2.0).abs() < 1e-12);
        assert_eq!(r.wall_latency.count, 1);
    }

    #[test]
    fn non_finite_journal_numbers_are_dropped() {
        let journal = format!(
            "{{\"schema\":\"{JOURNAL_SCHEMA}\",\"events\":1}}\n\
             {{\"track\":\"worker:0\",\"name\":\"task-0\",\"kind\":\"span\",\
             \"wall_start\":0.0,\"wall_dur\":1e999,\"virt_start\":0.0,\"virt_dur\":2.0}}\n"
        );
        if let Ok(r) = analyze_journal(&journal) {
            // 1e999 overflows to inf in the parser; it must not leak.
            let text = r.to_text();
            assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        }
    }

    #[test]
    fn queue_wait_args_fold_into_worker_audits() {
        let obs = Obs::enabled();
        obs.span(
            Track::Worker(0),
            "task-0",
            0.2,
            1.0,
            Some((0.0, 2.0)),
            &[("task", 0.0), ("queue_wait_wall", 0.2)],
        );
        obs.span(
            Track::Worker(0),
            "task-1",
            1.5,
            1.0,
            Some((2.0, 2.0)),
            &[
                ("task", 1.0),
                ("queue_wait_wall", 0.3),
                ("queue_wait_modelled", 0.5),
            ],
        );
        let r = analyze_obs(&obs);
        let w = &r.workers[0];
        assert!((w.queue_wait_wall - 0.5).abs() < 1e-12);
        assert!((w.queue_wait_modelled - 0.5).abs() < 1e-12);
        assert!(r.to_text().contains("queued"), "{}", r.to_text());
        // Lineage-free journals keep the audit quiet.
        let quiet = analyze_obs(&sample_obs());
        assert!(quiet.workers.iter().all(|w| w.queue_wait_wall == 0.0));
        assert!(!quiet.to_text().contains("queued"));
    }

    #[test]
    fn tied_completions_pick_the_first_finisher_as_critical() {
        // Two tasks end at exactly the same modelled instant; the
        // strictly-greater comparison keeps the first one seen, so the
        // answer is deterministic under journal order.
        let obs = Obs::enabled();
        obs.span(
            Track::Worker(0),
            "task-0",
            0.0,
            1.0,
            Some((0.0, 3.0)),
            &[("task", 0.0)],
        );
        obs.span(
            Track::Worker(1),
            "task-1",
            0.0,
            1.0,
            Some((1.0, 2.0)),
            &[("task", 1.0)],
        );
        let r = analyze_obs(&obs);
        assert!((r.modelled_makespan - 3.0).abs() < 1e-12);
        assert_eq!(r.critical_task, 0);
        assert_eq!(r.critical_worker, 0);
    }

    #[test]
    fn zero_duration_spans_do_not_corrupt_the_report() {
        let obs = Obs::enabled();
        obs.span(
            Track::Worker(0),
            "task-0",
            0.5,
            0.0,
            Some((1.0, 0.0)),
            &[("task", 0.0)],
        );
        obs.span(
            Track::Worker(0),
            "task-1",
            0.5,
            0.2,
            Some((1.0, 0.5)),
            &[("task", 1.0)],
        );
        let r = analyze_obs(&obs);
        assert_eq!(r.tasks, 2);
        assert!((r.modelled_makespan - 1.5).abs() < 1e-12);
        // The zero-duration span still "completes" at 1.0 but must not
        // win the critical slot over the real finisher.
        assert_eq!(r.critical_task, 1);
        let text = r.to_text();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    }

    #[test]
    fn text_rendering_names_the_headline_numbers() {
        let text = analyze_obs(&sample_obs()).to_text();
        assert!(text.contains("2λ guarantee"));
        assert!(text.contains("HOLDS"));
        assert!(text.contains("critical path"));
        assert!(text.contains("p95"));
        assert!(text.contains("gpu"));
    }
}
