//! Causal explanation of a run: blame attribution over the journal's
//! task-lineage DAG.
//!
//! A v2 journal carries the full causal chain of every task — estimate
//! (`task_model`) → plan decision (`decision` ids on spans and
//! dispatches) → dispatch (`task_dispatch` instants) → queue wait
//! (span args) → execution (worker spans, device spans tagged with the
//! task) → collection. This module folds that chain into an
//! [`ExplainReport`]:
//!
//! * the **true critical path** on both clocks — walked back edge by
//!   edge from the last finisher through same-worker chains to the
//!   dispatch that started the chain, not just "the task that finished
//!   last";
//! * a **blame decomposition** that attributes 100% of the modelled
//!   makespan to categories: compute, transfer (H2D), queue wait,
//!   straggle (excess over the best same-species rate), fault-recovery
//!   re-execution, re-plan gaps, and scheduling imbalance (head/tail
//!   idle). Per machine, the categories partition `[0, M]` exactly, so
//!   their machine-average sums to `M` up to float error;
//! * per-worker and per-query-length-bucket views of the same split;
//! * a [`ReplayInput`] — everything a counterfactual replayer needs
//!   (task models, observed per-worker slowdown ratios, the λ bound) —
//!   consumed by `swdual-core`'s what-if engine.
//!
//! v1 journals (no lineage) still explain, in *degraded* mode: no
//! dispatch edges, no decision ids, transfer and queue wait fold into
//! compute and imbalance. The report says so instead of guessing.

use crate::journal::{journal_schema, parse_journal, JournalError, JOURNAL_SCHEMA};
use crate::{Event, EventKind, Obs, Track};
use serde::Serialize;
use std::collections::BTreeMap;

/// Query-length bucket boundaries (residues): short / medium / long.
const BUCKETS: [(&str, usize, usize); 3] = [
    ("short", 0, 100),
    ("medium", 100, 300),
    ("long", 300, usize::MAX),
];

/// One category split of a stretch of machine time, in seconds.
/// The seven fields partition whatever window they describe.
#[derive(Debug, Clone, Copy, Default, Serialize)]
pub struct Blame {
    /// Useful alignment work (busy minus everything below).
    pub compute: f64,
    /// Host-to-device transfer time inside GPU busy spans.
    pub transfer: f64,
    /// Time tasks sat dispatched-but-not-started (modelled clock).
    pub queue_wait: f64,
    /// Busy time in excess of the best same-species observed rate.
    pub straggle: f64,
    /// Re-executed work: duplicate spans of the same task after a
    /// fault.
    pub recovery: f64,
    /// Idle gaps opened by re-plan decisions (`decision > 0`).
    pub replan: f64,
    /// Head/tail idle and unexplained gaps — the scheduler left the
    /// machine waiting.
    pub imbalance: f64,
}

impl Blame {
    /// Sum of all categories.
    pub fn total(&self) -> f64 {
        self.compute
            + self.transfer
            + self.queue_wait
            + self.straggle
            + self.recovery
            + self.replan
            + self.imbalance
    }

    fn add(&mut self, other: &Blame) {
        self.compute += other.compute;
        self.transfer += other.transfer;
        self.queue_wait += other.queue_wait;
        self.straggle += other.straggle;
        self.recovery += other.recovery;
        self.replan += other.replan;
        self.imbalance += other.imbalance;
    }

    fn scaled(&self, f: f64) -> Blame {
        Blame {
            compute: self.compute * f,
            transfer: self.transfer * f,
            queue_wait: self.queue_wait * f,
            straggle: self.straggle * f,
            recovery: self.recovery * f,
            replan: self.replan * f,
            imbalance: self.imbalance * f,
        }
    }
}

/// One edge of the causal critical path.
#[derive(Debug, Clone, Serialize)]
pub struct CriticalStep {
    /// Task executed in this step.
    pub task: i64,
    /// Worker it ran on.
    pub worker: usize,
    /// Step start on the path's clock (seconds).
    pub start: f64,
    /// Step end on the path's clock (seconds).
    pub end: f64,
    /// How this step chains to its predecessor: `dispatch` for the
    /// root (the chain began with a hand-off), `chain` when the worker
    /// ran it back-to-back after the previous step.
    pub edge: String,
    /// Plan decision that placed this execution (0 without lineage).
    pub decision: u64,
}

/// One worker's share of the blame.
#[derive(Debug, Clone, Serialize)]
pub struct WorkerBlame {
    /// Worker id.
    pub worker: usize,
    /// GPU worker?
    pub is_gpu: bool,
    /// Journaled device class (empty when untagged).
    pub device_class: String,
    /// Tasks it executed (including duplicates).
    pub tasks: usize,
    /// Observed slowdown vs its task-model estimates (1.0 = on
    /// estimate; 0.0 when the journal has no estimates to judge by).
    pub ratio: f64,
    /// Category split of this worker's `[0, makespan]` window.
    pub blame: Blame,
}

/// Blame over tasks whose query length falls in one bucket. Only the
/// busy-side categories are attributable to individual tasks; idle
/// categories stay at run/worker level.
#[derive(Debug, Clone, Serialize)]
pub struct BucketBlame {
    /// Bucket label (`short` / `medium` / `long`).
    pub label: String,
    /// Inclusive lower bound on query length.
    pub lo: usize,
    /// Exclusive upper bound (−1 = unbounded).
    pub hi: i64,
    /// Executions in the bucket.
    pub tasks: usize,
    /// Total modelled busy seconds.
    pub busy: f64,
    /// Busy-side split (compute/transfer/straggle/recovery populated).
    pub blame: Blame,
    /// Mean wall seconds a task of this bucket waited after dispatch.
    pub mean_queue_wait_wall: f64,
}

/// One task's model and observation, ready for counterfactual replay.
#[derive(Debug, Clone, Serialize)]
pub struct ReplayTask {
    /// Task id.
    pub id: usize,
    /// Estimated CPU seconds (from `task_model`).
    pub p_cpu: f64,
    /// Estimated GPU seconds.
    pub p_gpu: f64,
    /// Query length in residues (0 when the journal predates v2).
    pub query_len: usize,
    /// DP cells of the task (0 when unknown).
    pub cells: f64,
    /// Worker that (last) executed it; −1 if never executed.
    pub worker: i64,
    /// Observed modelled duration of the counted execution (0 if never
    /// executed).
    pub observed_modelled: f64,
}

/// One worker's observed calibration, ready for counterfactual replay.
#[derive(Debug, Clone, Serialize)]
pub struct ReplayWorker {
    /// Worker id.
    pub id: usize,
    /// GPU worker?
    pub is_gpu: bool,
    /// Journaled device class (empty when untagged).
    pub device_class: String,
    /// Observed duration/estimate ratio (1.0 when no data).
    pub ratio: f64,
    /// Whether a fault-track event implicated this worker.
    pub faulted: bool,
}

/// Everything a what-if engine needs to replay the run on the modelled
/// clock: the task models, the observed per-worker calibration, the
/// GPU transfer share and the original bound.
#[derive(Debug, Clone, Serialize)]
pub struct ReplayInput {
    /// Per-task models and observations, ascending by id.
    pub tasks: Vec<ReplayTask>,
    /// Per-worker calibration, ascending by id.
    pub workers: Vec<ReplayWorker>,
    /// Fraction of GPU busy time spent in H2D transfer (0 when
    /// unknown).
    pub gpu_transfer_fraction: f64,
    /// Final λ of the original plan (0 without a bound).
    pub lambda: f64,
    /// The run's achieved modelled makespan — the baseline every
    /// counterfactual compares against.
    pub modelled_makespan: f64,
}

/// The full causal explanation of one run.
#[derive(Debug, Clone, Serialize)]
pub struct ExplainReport {
    /// Schema the journal declared.
    pub schema: String,
    /// True when the journal lacks lineage (v1, or no `task_dispatch`
    /// events): dispatch edges, decisions and transfer attribution are
    /// unavailable and fold into coarser categories.
    pub degraded: bool,
    /// Wall-clock execution window (seconds).
    pub wall_makespan: f64,
    /// Modelled makespan — the window the blame partitions.
    pub modelled_makespan: f64,
    /// Final λ (0 without scheduler events).
    pub lambda: f64,
    /// 2·λ.
    pub two_lambda_bound: f64,
    /// Whether the journal carries a λ at all.
    pub has_bound: bool,
    /// `modelled_makespan ≤ 2λ`.
    pub bound_holds: bool,
    /// Distinct plan decisions observed (initial plan = 1).
    pub decisions: u64,
    /// Distinct tasks executed.
    pub tasks: usize,
    /// Causal critical path on the modelled clock, in execution order.
    pub critical_path: Vec<CriticalStep>,
    /// Causal critical path on the wall clock.
    pub critical_path_wall: Vec<CriticalStep>,
    /// Modelled seconds before the path's root started — dispatch and
    /// scheduling lead-in not covered by the path itself.
    pub critical_lead_in: f64,
    /// Machine-average blame in seconds; `blame.total()` equals the
    /// modelled makespan up to float error.
    pub blame: Blame,
    /// The same split as percentages of the makespan (sums to ~100).
    pub blame_percent: Blame,
    /// Per-worker splits (each partitions that worker's `[0, M]`).
    pub worker_blame: Vec<WorkerBlame>,
    /// Busy-side blame by query-length bucket (empty without v2
    /// `query_len` tags).
    pub buckets: Vec<BucketBlame>,
    /// Extracted inputs for counterfactual replay.
    pub replay: ReplayInput,
}

fn arg(event: &Event, key: &str) -> Option<f64> {
    event.args.iter().find(|(k, _)| k == key).map(|(_, v)| *v)
}

/// One executed job span, flattened for path walking and blame.
struct Exec {
    worker: usize,
    task: i64,
    wall_start: f64,
    wall_end: f64,
    virt_start: f64,
    virt_end: f64,
    decision: u64,
    queue_wait_wall: f64,
    queue_wait_modelled: f64,
    /// Re-executed duplicate of a task that also ran elsewhere.
    is_recovery: bool,
}

/// Explain a live recorder's events (assumes the current schema).
pub fn explain_obs(obs: &Obs) -> ExplainReport {
    explain_events(&obs.events(), JOURNAL_SCHEMA)
}

/// Parse a JSON-lines journal and explain it. v1 journals produce a
/// degraded (but valid) explanation.
pub fn explain_journal(journal: &str) -> Result<ExplainReport, JournalError> {
    let first = journal.lines().next().ok_or(JournalError::EmptyJournal)?;
    let schema = journal_schema(first)?;
    let events = parse_journal(journal)?;
    Ok(explain_events(&events, schema))
}

/// The fold itself: build the causal facts, walk the critical path,
/// partition the makespan.
pub fn explain_events(events: &[Event], schema: &str) -> ExplainReport {
    // ---- Pass 1: gather the raw facts. -------------------------------
    let mut execs: Vec<Exec> = Vec::new();
    let mut registered_gpu: BTreeMap<usize, bool> = BTreeMap::new();
    let mut device_classes: BTreeMap<usize, String> = BTreeMap::new();
    let mut model: BTreeMap<i64, (f64, f64, usize, f64)> = BTreeMap::new(); // p_cpu, p_gpu, qlen, cells
    let mut h2d: BTreeMap<i64, f64> = BTreeMap::new();
    let mut faulted: Vec<usize> = Vec::new();
    let mut saw_dispatch = false;
    let mut lambda = 0.0f64;
    let mut has_bound = false;

    let task_of = |event: &Event| -> i64 {
        arg(event, "task")
            .map(|t| t as i64)
            .or_else(|| {
                event
                    .name
                    .strip_prefix("task-")
                    .and_then(|s| s.parse().ok())
            })
            .unwrap_or(-1)
    };

    for event in events {
        match event.track {
            Track::Worker(w) if event.kind == EventKind::Span => {
                if event.is_profile_detail() {
                    continue;
                }
                let (vs, vd) = match (event.virt_start, event.virt_dur) {
                    (Some(s), Some(d)) => (s, d),
                    _ => continue,
                };
                execs.push(Exec {
                    worker: w,
                    task: task_of(event),
                    wall_start: event.wall_start,
                    wall_end: event.wall_start + event.wall_dur,
                    virt_start: vs,
                    virt_end: vs + vd,
                    decision: arg(event, "decision").unwrap_or(0.0) as u64,
                    queue_wait_wall: arg(event, "queue_wait_wall").unwrap_or(0.0),
                    queue_wait_modelled: arg(event, "queue_wait_modelled").unwrap_or(0.0),
                    is_recovery: false,
                });
            }
            Track::Device(_) if event.kind == EventKind::Span && event.name == "h2d_transfer" => {
                if let (Some(t), Some(vd)) = (arg(event, "task"), event.virt_dur) {
                    *h2d.entry(t as i64).or_insert(0.0) += vd;
                }
            }
            // Watchdog alerts are commentary about the run; they may
            // name a worker without that worker having faulted, so
            // they must not feed the fault fold.
            Track::Faults if !event.is_alert() => {
                if let Some(w) = arg(event, "worker") {
                    faulted.push(w as usize);
                }
            }
            Track::Scheduler if event.name == "binsearch_done" => {
                has_bound = true;
                lambda = arg(event, "lambda")
                    .or_else(|| arg(event, "upper_bound"))
                    .unwrap_or(0.0);
            }
            Track::Master if event.kind == EventKind::Instant => match event.name.as_str() {
                "worker_registered" => {
                    if let Some(w) = arg(event, "worker") {
                        registered_gpu.insert(w as usize, arg(event, "is_gpu") == Some(1.0));
                    }
                }
                "task_dispatch" => saw_dispatch = true,
                "task_model" => {
                    if let Some(t) = arg(event, "task") {
                        model.insert(
                            t as i64,
                            (
                                arg(event, "p_cpu").unwrap_or(0.0),
                                arg(event, "p_gpu").unwrap_or(0.0),
                                arg(event, "query_len").unwrap_or(0.0) as usize,
                                arg(event, "cells").unwrap_or(0.0),
                            ),
                        );
                    }
                }
                name if name.starts_with("device_class:") => {
                    if let Some(w) = arg(event, "worker") {
                        device_classes
                            .insert(w as usize, name["device_class:".len()..].to_string());
                    }
                }
                _ => {}
            },
            _ => {}
        }
    }

    // Mark duplicate executions of a task (everything but its last
    // finisher) as fault-recovery re-execution.
    let mut last_end: BTreeMap<i64, f64> = BTreeMap::new();
    for e in &execs {
        last_end
            .entry(e.task)
            .and_modify(|v| *v = v.max(e.virt_end))
            .or_insert(e.virt_end);
    }
    let mut counted: BTreeMap<i64, bool> = BTreeMap::new();
    for e in execs.iter_mut() {
        let is_last = (e.virt_end - last_end[&e.task]).abs() < 1e-12;
        let already = counted.get(&e.task).copied().unwrap_or(false);
        if is_last && !already {
            counted.insert(e.task, true);
        } else {
            e.is_recovery = true;
        }
    }

    let degraded = schema != JOURNAL_SCHEMA || !saw_dispatch;

    // ---- Makespans and bounds. ---------------------------------------
    let modelled_makespan = execs.iter().map(|e| e.virt_end).fold(0.0, f64::max);
    let wall_lo = execs
        .iter()
        .map(|e| e.wall_start)
        .fold(f64::INFINITY, f64::min);
    let wall_hi = execs
        .iter()
        .map(|e| e.wall_end)
        .fold(f64::NEG_INFINITY, f64::max);
    let wall_makespan = if wall_hi > wall_lo {
        wall_hi - wall_lo
    } else {
        0.0
    };
    let two_lambda_bound = 2.0 * lambda;
    let bound_holds = has_bound && modelled_makespan <= two_lambda_bound * (1.0 + 1e-9) + 1e-12;
    let decisions = execs.iter().map(|e| e.decision).max().map_or(0, |d| d + 1);

    // ---- Critical paths (both clocks). -------------------------------
    let virt_eps = 1e-9 * modelled_makespan.max(1.0);
    let wall_eps = (0.01 * wall_makespan).max(1e-4);
    let critical_path = walk_path(&execs, |e| e.virt_start, |e| e.virt_end, virt_eps);
    let critical_path_wall = walk_path(&execs, |e| e.wall_start, |e| e.wall_end, wall_eps);
    let critical_lead_in = critical_path.first().map_or(0.0, |s| s.start);

    // ---- Per-worker blame: partition [0, M] per machine. -------------
    // Worker universe: everyone registered plus everyone with a span.
    let mut worker_ids: Vec<usize> = registered_gpu.keys().copied().collect();
    for e in &execs {
        if !worker_ids.contains(&e.worker) {
            worker_ids.push(e.worker);
        }
    }
    worker_ids.sort_unstable();

    // Observed slowdown ratio per worker: busy / estimated, species
    // priced by the task model.
    let mut ratios: BTreeMap<usize, f64> = BTreeMap::new();
    for &w in &worker_ids {
        let is_gpu = registered_gpu.get(&w).copied().unwrap_or(false);
        let mut busy = 0.0;
        let mut est = 0.0;
        for e in execs.iter().filter(|e| e.worker == w && !e.is_recovery) {
            if let Some(&(p_cpu, p_gpu, ..)) = model.get(&e.task) {
                let p = if is_gpu { p_gpu } else { p_cpu };
                if p > 0.0 {
                    busy += e.virt_end - e.virt_start;
                    est += p;
                }
            }
        }
        ratios.insert(w, if est > 0.0 { busy / est } else { 0.0 });
    }
    // Species baseline: the best (smallest positive) observed ratio.
    let species_baseline = |gpu: bool| -> f64 {
        worker_ids
            .iter()
            .filter(|w| registered_gpu.get(w).copied().unwrap_or(false) == gpu)
            .map(|w| ratios[w])
            .filter(|r| *r > 0.0)
            .fold(f64::INFINITY, f64::min)
    };
    let baselines = (species_baseline(false), species_baseline(true));

    let mut worker_blame: Vec<WorkerBlame> = Vec::new();
    for &w in &worker_ids {
        let is_gpu = registered_gpu.get(&w).copied().unwrap_or(false);
        let mut spans: Vec<&Exec> = execs.iter().filter(|e| e.worker == w).collect();
        spans.sort_by(|a, b| a.virt_start.total_cmp(&b.virt_start));

        let mut b = Blame::default();
        let mut cursor = 0.0f64;
        for e in &spans {
            let gap = (e.virt_start - cursor).max(0.0);
            if gap > 0.0 {
                // A gap before a span: first the measured queue wait,
                // then re-plan overhead if a re-plan placed the span,
                // else plain imbalance.
                let qw = e.queue_wait_modelled.clamp(0.0, gap);
                b.queue_wait += qw;
                if e.decision > 0 {
                    b.replan += gap - qw;
                } else {
                    b.imbalance += gap - qw;
                }
            }
            let dur = (e.virt_end - e.virt_start).max(0.0);
            if e.is_recovery {
                b.recovery += dur;
            } else {
                let transfer = if is_gpu {
                    h2d.get(&e.task).copied().unwrap_or(0.0).clamp(0.0, dur)
                } else {
                    0.0
                };
                b.transfer += transfer;
                b.compute += dur - transfer;
            }
            cursor = cursor.max(e.virt_end);
        }
        b.imbalance += (modelled_makespan - cursor).max(0.0);

        // Straggle: the part of useful busy time in excess of what the
        // best same-species worker would have needed.
        let ratio = ratios[&w];
        let baseline = if is_gpu { baselines.1 } else { baselines.0 };
        if ratio > 0.0 && baseline.is_finite() && ratio > baseline {
            let busy_useful = b.compute + b.transfer;
            let excess = (busy_useful * (1.0 - baseline / ratio)).clamp(0.0, b.compute);
            b.straggle += excess;
            b.compute -= excess;
        }

        worker_blame.push(WorkerBlame {
            worker: w,
            is_gpu,
            device_class: device_classes.get(&w).cloned().unwrap_or_default(),
            tasks: spans.len(),
            ratio,
            blame: b,
        });
    }

    // Run-level blame: machine-average, so the total is exactly the
    // makespan (each worker's split partitions [0, M]).
    let m = worker_blame.len().max(1);
    let mut blame = Blame::default();
    for wb in &worker_blame {
        blame.add(&wb.blame);
    }
    let blame = blame.scaled(1.0 / m as f64);
    let blame_percent = if modelled_makespan > 0.0 {
        blame.scaled(100.0 / modelled_makespan)
    } else {
        Blame::default()
    };

    // ---- Query-length buckets (busy side only). ----------------------
    let mut buckets: Vec<BucketBlame> = Vec::new();
    if model.values().any(|&(.., qlen, _)| qlen > 0) {
        for (label, lo, hi) in BUCKETS {
            let mut bb = BucketBlame {
                label: label.to_string(),
                lo,
                hi: if hi == usize::MAX { -1 } else { hi as i64 },
                tasks: 0,
                busy: 0.0,
                blame: Blame::default(),
                mean_queue_wait_wall: 0.0,
            };
            let mut qw_sum = 0.0;
            for e in &execs {
                let qlen = model.get(&e.task).map_or(0, |&(.., q, _)| q);
                if qlen < lo || qlen >= hi {
                    continue;
                }
                bb.tasks += 1;
                let dur = (e.virt_end - e.virt_start).max(0.0);
                bb.busy += dur;
                qw_sum += e.queue_wait_wall;
                if e.is_recovery {
                    bb.blame.recovery += dur;
                } else {
                    let gpu = registered_gpu.get(&e.worker).copied().unwrap_or(false);
                    let transfer = if gpu {
                        h2d.get(&e.task).copied().unwrap_or(0.0).clamp(0.0, dur)
                    } else {
                        0.0
                    };
                    let ratio = ratios[&e.worker];
                    let baseline = if gpu { baselines.1 } else { baselines.0 };
                    let useful = dur - transfer;
                    let excess = if ratio > 0.0 && baseline.is_finite() && ratio > baseline {
                        (useful * (1.0 - baseline / ratio)).clamp(0.0, useful)
                    } else {
                        0.0
                    };
                    bb.blame.transfer += transfer;
                    bb.blame.straggle += excess;
                    bb.blame.compute += useful - excess;
                }
            }
            if bb.tasks > 0 {
                bb.mean_queue_wait_wall = qw_sum / bb.tasks as f64;
                buckets.push(bb);
            }
        }
    }

    // ---- Replay input. -----------------------------------------------
    let mut replay_tasks: Vec<ReplayTask> = Vec::new();
    for (&t, &(p_cpu, p_gpu, qlen, cells)) in &model {
        if t < 0 {
            continue;
        }
        let exec = execs.iter().rfind(|e| e.task == t && !e.is_recovery);
        replay_tasks.push(ReplayTask {
            id: t as usize,
            p_cpu,
            p_gpu,
            query_len: qlen,
            cells,
            worker: exec.map_or(-1, |e| e.worker as i64),
            observed_modelled: exec.map_or(0.0, |e| e.virt_end - e.virt_start),
        });
    }
    faulted.sort_unstable();
    faulted.dedup();
    let replay_workers: Vec<ReplayWorker> = worker_ids
        .iter()
        .map(|&w| ReplayWorker {
            id: w,
            is_gpu: registered_gpu.get(&w).copied().unwrap_or(false),
            device_class: device_classes.get(&w).cloned().unwrap_or_default(),
            ratio: ratios[&w],
            faulted: faulted.contains(&w),
        })
        .collect();
    let gpu_busy: f64 = worker_blame
        .iter()
        .filter(|wb| wb.is_gpu)
        .map(|wb| wb.blame.compute + wb.blame.transfer + wb.blame.straggle)
        .sum();
    let gpu_h2d: f64 = worker_blame
        .iter()
        .filter(|wb| wb.is_gpu)
        .map(|wb| wb.blame.transfer)
        .sum();
    let replay = ReplayInput {
        tasks: replay_tasks,
        workers: replay_workers,
        gpu_transfer_fraction: if gpu_busy > 0.0 {
            gpu_h2d / gpu_busy
        } else {
            0.0
        },
        lambda,
        modelled_makespan,
    };

    let mut done: Vec<i64> = execs.iter().map(|e| e.task).collect();
    done.sort_unstable();
    done.dedup();

    ExplainReport {
        schema: schema.to_string(),
        degraded,
        wall_makespan,
        modelled_makespan,
        lambda,
        two_lambda_bound,
        has_bound,
        bound_holds,
        decisions,
        tasks: done.len(),
        critical_path,
        critical_path_wall,
        critical_lead_in,
        blame,
        blame_percent,
        worker_blame,
        buckets,
        replay,
    }
}

/// Walk the causal critical path backwards from the last finisher:
/// while the previous span on the same worker ends where this one
/// starts (within `eps`), the chain continues; the first span without
/// such a predecessor is the root, reached by a dispatch edge.
fn walk_path(
    execs: &[Exec],
    start: impl Fn(&Exec) -> f64,
    end: impl Fn(&Exec) -> f64,
    eps: f64,
) -> Vec<CriticalStep> {
    let mut cur = match execs
        .iter()
        .enumerate()
        .max_by(|a, b| end(a.1).total_cmp(&end(b.1)))
    {
        Some((i, _)) => i,
        None => return Vec::new(),
    };
    let mut path: Vec<usize> = vec![cur];
    // A predecessor must *finish strictly earlier* than the current
    // span finishes — with a generous eps (short wall-clock runs) the
    // contiguity filter alone can admit a later span and loop the walk
    // back on itself. The end coordinate strictly decreases along the
    // walk, so it terminates; the length cap is a belt-and-braces
    // guard.
    while path.len() <= execs.len() {
        let pred = execs
            .iter()
            .enumerate()
            .filter(|(i, e)| *i != cur && e.worker == execs[cur].worker)
            .filter(|(_, e)| end(e) < end(&execs[cur]) && end(e) <= start(&execs[cur]) + eps)
            .max_by(|a, b| end(a.1).total_cmp(&end(b.1)));
        match pred {
            Some((i, e)) if start(&execs[cur]) - end(e) <= eps => {
                path.push(i);
                cur = i;
            }
            _ => break,
        }
    }
    path.reverse();
    path.iter()
        .enumerate()
        .map(|(k, &i)| {
            let e = &execs[i];
            CriticalStep {
                task: e.task,
                worker: e.worker,
                start: start(e),
                end: end(e),
                edge: if k == 0 { "dispatch" } else { "chain" }.to_string(),
                decision: e.decision,
            }
        })
        .collect()
}

impl ExplainReport {
    /// Pretty-printed JSON rendering.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialises")
    }

    /// Human-readable rendering for terminals.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let mut line = |s: String| {
            out.push_str(&s);
            out.push('\n');
        };
        line(format!("run explanation ({})", self.schema));
        if self.degraded {
            line(
                "  NOTE: journal has no causal lineage (v1 or no dispatch \
                 events); explanation is degraded — no dispatch edges, \
                 transfer/queue-wait fold into coarser categories."
                    .to_string(),
            );
        }
        line(format!(
            "  makespan               {:.6} s wall · {:.6} s modelled",
            self.wall_makespan, self.modelled_makespan
        ));
        if self.has_bound {
            line(format!(
                "  2λ bound               {:.6} s ({})",
                self.two_lambda_bound,
                if self.bound_holds {
                    "HOLDS"
                } else {
                    "VIOLATED"
                }
            ));
        }
        line(format!(
            "  plan decisions         {} · tasks {}",
            self.decisions, self.tasks
        ));
        line("  blame (machine-average seconds, sums to the modelled makespan):".to_string());
        let b = &self.blame;
        let p = &self.blame_percent;
        for (name, sec, pct) in [
            ("compute", b.compute, p.compute),
            ("transfer (H2D)", b.transfer, p.transfer),
            ("queue wait", b.queue_wait, p.queue_wait),
            ("straggle", b.straggle, p.straggle),
            ("fault recovery", b.recovery, p.recovery),
            ("re-plan gaps", b.replan, p.replan),
            ("imbalance", b.imbalance, p.imbalance),
        ] {
            line(format!("    {name:<16} {sec:>12.6} s  ({pct:>5.1}%)"));
        }
        line(format!(
            "    {:<16} {:>12.6} s  (100.0%)",
            "total",
            b.total()
        ));
        if !self.critical_path.is_empty() {
            line(format!(
                "  critical path (modelled, lead-in {:.6} s):",
                self.critical_lead_in
            ));
            for s in &self.critical_path {
                line(format!(
                    "    {:<9} task {:>4} on worker {:>2}  [{:.6}, {:.6}] (decision {})",
                    s.edge, s.task, s.worker, s.start, s.end, s.decision
                ));
            }
        }
        line("  workers:".to_string());
        for w in &self.worker_blame {
            let species = if w.device_class.is_empty() {
                if w.is_gpu { "gpu" } else { "cpu" }.to_string()
            } else {
                w.device_class.clone()
            };
            line(format!(
                "    {:>3} {:<8} {:>4} tasks · ratio {:.3} · compute {:.6} s · wait {:.6} s · straggle {:.6} s · idle {:.6} s",
                w.worker,
                species,
                w.tasks,
                w.ratio,
                w.blame.compute,
                w.blame.queue_wait,
                w.blame.straggle,
                w.blame.imbalance + w.blame.replan
            ));
        }
        for bkt in &self.buckets {
            line(format!(
                "  bucket {:<7} ({} tasks) busy {:.6} s · compute {:.6} s · transfer {:.6} s · straggle {:.6} s · mean wait {:.6} s",
                bkt.label,
                bkt.tasks,
                bkt.busy,
                bkt.blame.compute,
                bkt.blame.transfer,
                bkt.blame.straggle,
                bkt.mean_queue_wait_wall
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::JOURNAL_SCHEMA_V1;

    /// Two CPU workers, one GPU; worker 1 straggles 2×; task 3 is a
    /// re-planned hand-off with queue wait; task 4 runs on the GPU
    /// with an H2D transfer span.
    fn lineage_obs() -> Obs {
        let obs = Obs::enabled();
        for (w, gpu) in [(0usize, 0.0), (1, 0.0), (2, 1.0)] {
            obs.instant(
                Track::Master,
                "worker_registered",
                &[("worker", w as f64), ("is_gpu", gpu)],
            );
        }
        obs.instant(Track::Master, "device_class:c2050", &[("worker", 2.0)]);
        for (t, p_cpu, p_gpu, qlen) in [
            (0.0, 2.0, 0.5, 80.0),
            (1.0, 2.0, 0.5, 150.0),
            (2.0, 2.0, 0.5, 150.0),
            (3.0, 0.25, 0.4, 400.0),
            (4.0, 4.0, 1.0, 400.0),
        ] {
            obs.instant(
                Track::Master,
                "task_model",
                &[
                    ("task", t),
                    ("p_cpu", p_cpu),
                    ("p_gpu", p_gpu),
                    ("query_len", qlen),
                    ("cells", qlen * 1e4),
                ],
            );
        }
        obs.instant(
            Track::Scheduler,
            "binsearch_done",
            &[("lambda", 4.2), ("iterations", 9.0), ("lower_bound", 3.0)],
        );
        for t in 0..5 {
            obs.instant(
                Track::Master,
                "task_dispatch",
                &[("task", t as f64), ("seq", t as f64), ("decision", 0.0)],
            );
        }
        // Worker 0 (on estimate): tasks 0 then 1, back to back.
        obs.span(
            Track::Worker(0),
            "task-0",
            0.01,
            0.02,
            Some((0.0, 2.0)),
            &[("task", 0.0), ("decision", 0.0)],
        );
        obs.span(
            Track::Worker(0),
            "task-1",
            0.03,
            0.02,
            Some((2.0, 2.0)),
            &[("task", 1.0), ("decision", 0.0)],
        );
        // Worker 1 (2× straggler): task 2, then a re-planned task 3
        // after a modelled gap with measured queue wait.
        obs.span(
            Track::Worker(1),
            "task-2",
            0.01,
            0.05,
            Some((0.0, 4.0)),
            &[("task", 2.0), ("decision", 0.0)],
        );
        obs.span(
            Track::Worker(1),
            "task-3",
            0.07,
            0.02,
            Some((4.5, 0.5)),
            &[
                ("task", 3.0),
                ("decision", 1.0),
                ("queue_wait_modelled", 0.2),
                ("queue_wait_wall", 0.01),
            ],
        );
        // Worker 2 (GPU): task 4 with an H2D transfer inside it.
        obs.span(
            Track::Worker(2),
            "task-4",
            0.01,
            0.03,
            Some((0.0, 1.0)),
            &[("task", 4.0), ("decision", 0.0)],
        );
        obs.span(
            Track::Device(0),
            "h2d_transfer",
            0.011,
            0.001,
            Some((0.0, 0.25)),
            &[("task", 4.0)],
        );
        obs
    }

    #[test]
    fn blame_partitions_the_makespan_exactly() {
        let r = explain_obs(&lineage_obs());
        assert!(!r.degraded);
        assert!((r.modelled_makespan - 5.0).abs() < 1e-12);
        let total = r.blame.total();
        assert!(
            (total - r.modelled_makespan).abs() < 1e-9 * r.modelled_makespan.max(1.0),
            "blame total {total} vs makespan {}",
            r.modelled_makespan
        );
        let pct = r.blame_percent.total();
        assert!((pct - 100.0).abs() < 1e-6, "percent total {pct}");
        // Every per-worker split partitions [0, M] too.
        for w in &r.worker_blame {
            assert!(
                (w.blame.total() - r.modelled_makespan).abs() < 1e-9,
                "worker {} total {}",
                w.worker,
                w.blame.total()
            );
        }
    }

    #[test]
    fn categories_land_where_the_run_put_them() {
        let r = explain_obs(&lineage_obs());
        // Worker 1 ran at 2× its estimates → straggle blame there.
        let w1 = r.worker_blame.iter().find(|w| w.worker == 1).unwrap();
        assert!(w1.ratio > 1.9, "ratio {}", w1.ratio);
        assert!(w1.blame.straggle > 0.5, "straggle {}", w1.blame.straggle);
        // Its measured queue wait and the re-plan gap both show up.
        assert!((w1.blame.queue_wait - 0.2).abs() < 1e-12);
        assert!((w1.blame.replan - 0.3).abs() < 1e-12);
        // The GPU's H2D span becomes transfer blame.
        let w2 = r.worker_blame.iter().find(|w| w.worker == 2).unwrap();
        assert!((w2.blame.transfer - 0.25).abs() < 1e-12);
        // Worker 0 finished at 4.0 of a 5.0 makespan → tail imbalance.
        let w0 = r.worker_blame.iter().find(|w| w.worker == 0).unwrap();
        assert!((w0.blame.imbalance - 1.0).abs() < 1e-12);
        // Run-level percentages name a nonzero share for each cause.
        assert!(r.blame_percent.compute > 40.0);
        assert!(r.blame_percent.straggle > 0.0);
        assert!(r.blame_percent.transfer > 0.0);
    }

    #[test]
    fn replanned_last_finisher_roots_at_its_dispatch() {
        // Worker 1's task 3 ends last (5.0) but started 0.5 s after
        // task 2 finished — a re-plan hand-off, not a compute chain.
        // The path must root at task 3 with a dispatch edge and report
        // the 4.5 s lead-in, not pretend task 2 caused it.
        let r = explain_obs(&lineage_obs());
        let tasks: Vec<i64> = r.critical_path.iter().map(|s| s.task).collect();
        assert_eq!(tasks, vec![3]);
        assert_eq!(r.critical_path[0].edge, "dispatch");
        assert_eq!(r.critical_path[0].decision, 1);
        assert!((r.critical_lead_in - 4.5).abs() < 1e-12);
    }

    #[test]
    fn contiguous_chains_walk_back_to_their_root() {
        let obs = Obs::enabled();
        // Worker 0: two contiguous tasks ending last.
        obs.span(
            Track::Worker(0),
            "task-0",
            0.0,
            0.1,
            Some((0.0, 3.0)),
            &[("task", 0.0)],
        );
        obs.span(
            Track::Worker(0),
            "task-1",
            0.1,
            0.1,
            Some((3.0, 3.0)),
            &[("task", 1.0)],
        );
        // Worker 1: one long task that is NOT the last finisher.
        obs.span(
            Track::Worker(1),
            "task-2",
            0.0,
            0.2,
            Some((0.0, 5.9)),
            &[("task", 2.0)],
        );
        let naive = crate::analysis::analyze_obs(&obs);
        let r = explain_obs(&obs);
        assert_eq!(naive.critical_task, 1);
        let tasks: Vec<i64> = r.critical_path.iter().map(|s| s.task).collect();
        assert_eq!(tasks, vec![0, 1], "chain must walk back to task 0");
        assert_eq!(r.critical_path[0].edge, "dispatch");
        assert_eq!(r.critical_path[1].edge, "chain");
        assert_eq!(r.critical_lead_in, 0.0);
    }

    #[test]
    fn duplicate_executions_count_as_recovery() {
        let obs = Obs::enabled();
        // Task 0 runs twice: once on the dying worker 0, again on 1.
        obs.span(
            Track::Worker(0),
            "task-0",
            0.0,
            0.1,
            Some((0.0, 1.0)),
            &[("task", 0.0)],
        );
        obs.span(
            Track::Worker(1),
            "task-0",
            0.2,
            0.1,
            Some((0.0, 1.5)),
            &[("task", 0.0)],
        );
        let r = explain_events(&obs.events(), JOURNAL_SCHEMA);
        let w0 = r.worker_blame.iter().find(|w| w.worker == 0).unwrap();
        assert!((w0.blame.recovery - 1.0).abs() < 1e-12, "{:?}", w0.blame);
        let w1 = r.worker_blame.iter().find(|w| w.worker == 1).unwrap();
        assert_eq!(w1.blame.recovery, 0.0);
        assert_eq!(r.tasks, 1);
    }

    #[test]
    fn v1_journals_explain_in_degraded_mode() {
        let journal = format!(
            "{{\"schema\":\"{JOURNAL_SCHEMA_V1}\",\"events\":2}}\n\
             {{\"track\":\"worker:0\",\"name\":\"task-0\",\"kind\":\"span\",\
             \"wall_start\":0.0,\"wall_dur\":1.0,\"virt_start\":0.0,\"virt_dur\":2.0,\
             \"args\":{{\"task\":0.0}}}}\n\
             {{\"track\":\"worker:1\",\"name\":\"task-1\",\"kind\":\"span\",\
             \"wall_start\":0.0,\"wall_dur\":1.0,\"virt_start\":0.0,\"virt_dur\":3.0,\
             \"args\":{{\"task\":1.0}}}}\n"
        );
        let r = explain_journal(&journal).expect("v1 explains");
        assert!(r.degraded);
        assert_eq!(r.schema, JOURNAL_SCHEMA_V1);
        assert!((r.blame.total() - r.modelled_makespan).abs() < 1e-9);
        let text = r.to_text();
        assert!(text.contains("degraded"), "{text}");
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
    }

    #[test]
    fn v2_without_dispatches_is_also_degraded() {
        let obs = Obs::enabled();
        obs.span(
            Track::Worker(0),
            "task-0",
            0.0,
            0.1,
            Some((0.0, 1.0)),
            &[("task", 0.0)],
        );
        assert!(explain_obs(&obs).degraded);
        assert!(!explain_obs(&lineage_obs()).degraded);
    }

    #[test]
    fn buckets_split_by_query_length() {
        let r = explain_obs(&lineage_obs());
        let labels: Vec<&str> = r.buckets.iter().map(|b| b.label.as_str()).collect();
        assert_eq!(labels, vec!["short", "medium", "long"]);
        let short = &r.buckets[0];
        assert_eq!(short.tasks, 1); // task 0, qlen 80
        let long = &r.buckets[2];
        assert_eq!(long.tasks, 2); // tasks 3 and 4, qlen 400
        assert!(long.blame.transfer > 0.0, "GPU task 4 is long");
        // Bucket busy-side categories stay internally consistent.
        for b in &r.buckets {
            let busy_split =
                b.blame.compute + b.blame.transfer + b.blame.straggle + b.blame.recovery;
            assert!(
                (busy_split - b.busy).abs() < 1e-9,
                "{}: {busy_split}",
                b.label
            );
        }
    }

    #[test]
    fn replay_input_carries_models_and_ratios() {
        let r = explain_obs(&lineage_obs());
        assert_eq!(r.replay.tasks.len(), 5);
        let t4 = r.replay.tasks.iter().find(|t| t.id == 4).unwrap();
        assert_eq!(t4.worker, 2);
        assert!((t4.p_gpu - 1.0).abs() < 1e-12);
        assert_eq!(t4.query_len, 400);
        assert_eq!(r.replay.workers.len(), 3);
        let w1 = r.replay.workers.iter().find(|w| w.id == 1).unwrap();
        assert!(w1.ratio > 1.9);
        assert!((r.replay.lambda - 4.2).abs() < 1e-12);
        assert!((r.replay.modelled_makespan - 5.0).abs() < 1e-12);
        assert!(r.replay.gpu_transfer_fraction > 0.2);
    }

    #[test]
    fn empty_events_yield_a_quiet_report() {
        let r = explain_events(&[], JOURNAL_SCHEMA);
        assert_eq!(r.tasks, 0);
        assert!(r.critical_path.is_empty());
        assert_eq!(r.blame.total(), 0.0);
        let text = r.to_text();
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        assert!(r.to_json().contains("\"blame\""));
    }

    #[test]
    fn json_rendering_names_the_blame_categories() {
        let json = explain_obs(&lineage_obs()).to_json();
        for key in [
            "\"compute\"",
            "\"transfer\"",
            "\"queue_wait\"",
            "\"straggle\"",
            "\"recovery\"",
            "\"replan\"",
            "\"imbalance\"",
            "\"critical_path\"",
            "\"replay\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }
}
