//! Crash-surviving flight recorder: a fixed-size ring of the most
//! recent events plus a panic hook that dumps the ring as a valid
//! `swdual-journal/2` fragment.
//!
//! The ring rides the event bus as a tap with *overwrite-oldest*
//! semantics (a crash dump must not lose the present, unlike a live
//! subscriber which must not lose the past — see [`crate::bus`]).
//! Attach one with [`crate::Obs::attach_flight`]; install the dump
//! hook with [`FlightRecorder::install_panic_hook`]. When the process
//! panics, the last N events are written to `CRASH-<pid>.jsonl` in the
//! configured directory — a journal fragment `swdual explain`,
//! `swdual analyze` and `swdual tail` all fold without special
//! casing, because the dump reuses the exact serialisation of
//! [`crate::export::journal_jsonl`].

use crate::export::{journal_event_line, journal_header};
use crate::Event;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Default ring capacity: enough for the tail of a large run while
/// keeping the dump (and the resident ring) small.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 4096;

/// Environment variable overriding the crash-dump directory; used by
/// tests and CI to collect `CRASH-*.jsonl` from a known place.
pub const CRASH_DIR_ENV: &str = "SWDUAL_CRASH_DIR";

struct RingState {
    events: VecDeque<Event>,
    /// Total events ever offered, including overwritten ones.
    seen: u64,
}

/// Shared ring storage; the bus publishes into it, the recorder dumps
/// from it.
pub(crate) struct RingShared {
    capacity: usize,
    state: Mutex<RingState>,
    /// Set once a crash dump has been written, so a panic cascade
    /// (e.g. panic-while-panicking across threads) writes one file.
    dumped: AtomicBool,
}

impl RingShared {
    pub(crate) fn record(&self, event: &Event) {
        let mut state = self.state.lock().expect("flight ring lock");
        if state.events.len() == self.capacity {
            state.events.pop_front();
        }
        state.events.push_back(event.clone());
        state.seen += 1;
    }
}

/// Fixed-size overwrite-oldest ring of the most recent events.
#[derive(Clone)]
pub struct FlightRecorder(Arc<RingShared>);

impl FlightRecorder {
    /// A ring keeping the last `capacity` events (at least one).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder(Arc::new(RingShared {
            capacity: capacity.max(1),
            state: Mutex::new(RingState {
                events: VecDeque::new(),
                seen: 0,
            }),
            dumped: AtomicBool::new(false),
        }))
    }

    pub(crate) fn ring(&self) -> Arc<RingShared> {
        Arc::clone(&self.0)
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.0.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.0.state.lock().expect("flight ring lock").events.len()
    }

    /// Whether the ring holds no events yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever offered to the ring, including those since
    /// overwritten. `seen() - len()` is the overwrite count.
    pub fn seen(&self) -> u64 {
        self.0.state.lock().expect("flight ring lock").seen
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.0
            .state
            .lock()
            .expect("flight ring lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Render the ring as a `swdual-journal/2` fragment: a schema
    /// header carrying the exact retained count, then one JSON line
    /// per event in ring order. Valid input to
    /// [`crate::journal::parse_journal`] and every CLI consumer.
    pub fn dump_jsonl(&self) -> String {
        let events = self.events();
        let mut out = journal_header(events.len());
        out.push('\n');
        for event in &events {
            out.push_str(&journal_event_line(event));
            out.push('\n');
        }
        out
    }

    /// Write the fragment to `path`, creating parent directories.
    pub fn dump_to(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.dump_jsonl())
    }

    /// The crash-dump path for this process under `dir`:
    /// `dir/CRASH-<pid>.jsonl`.
    pub fn crash_path(dir: &Path) -> PathBuf {
        dir.join(format!("CRASH-{}.jsonl", std::process::id()))
    }

    /// The directory crash dumps go to: `$SWDUAL_CRASH_DIR` when set,
    /// otherwise `fallback`.
    pub fn crash_dir(fallback: &Path) -> PathBuf {
        match std::env::var_os(CRASH_DIR_ENV) {
            Some(dir) if !dir.is_empty() => PathBuf::from(dir),
            _ => fallback.to_path_buf(),
        }
    }

    /// Install a process panic hook that dumps the ring to
    /// `CRASH-<pid>.jsonl` under `dir` (or `$SWDUAL_CRASH_DIR` when
    /// set), then delegates to the previously installed hook so normal
    /// panic reporting still happens. The dump is written at most once
    /// per process, even if several threads panic. Install once per
    /// process; each call layers another hook.
    pub fn install_panic_hook(&self, dir: &Path) {
        let ring = Arc::clone(&self.0);
        let target = Self::crash_path(&Self::crash_dir(dir));
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !ring.dumped.swap(true, Ordering::SeqCst) {
                let recorder = FlightRecorder(Arc::clone(&ring));
                match recorder.dump_to(&target) {
                    Ok(()) => eprintln!(
                        "swdual: flight recorder dumped {} event(s) to {}",
                        recorder.len(),
                        target.display()
                    ),
                    Err(e) => eprintln!(
                        "swdual: flight recorder failed to write {}: {e}",
                        target.display()
                    ),
                }
            }
            previous(info);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{parse_journal, validate_header};
    use crate::{Obs, Track};

    #[test]
    fn ring_keeps_the_newest_events() {
        let obs = Obs::enabled();
        let flight = FlightRecorder::new(3);
        obs.attach_flight(&flight);
        for i in 0..10 {
            obs.instant(Track::Master, &format!("e{i}"), &[]);
        }
        let names: Vec<String> = flight.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["e7", "e8", "e9"]);
        assert_eq!(flight.len(), 3);
        assert_eq!(flight.seen(), 10);
        // Rings never drop (they overwrite): the bus drop counter
        // stays untouched.
        assert_eq!(obs.bus_dropped_events(), 0);
    }

    #[test]
    fn dump_is_a_valid_journal_fragment() {
        let obs = Obs::enabled();
        let flight = FlightRecorder::new(8);
        obs.attach_flight(&flight);
        obs.span(
            Track::Worker(1),
            "task-3",
            0.1,
            0.4,
            Some((0.0, 0.5)),
            &[("task", 3.0), ("cells", 99.0)],
        );
        obs.instant(Track::Faults, "worker_death", &[("worker", 0.0)]);
        let dump = flight.dump_jsonl();
        let first = dump.lines().next().expect("header line");
        validate_header(first).expect("crash fragment header validates");
        let events = parse_journal(&dump).expect("crash fragment parses");
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "task-3");
        assert_eq!(events[0].track, Track::Worker(1));
        assert_eq!(events[1].track, Track::Faults);
    }

    #[test]
    fn empty_ring_dumps_a_bare_header() {
        let flight = FlightRecorder::new(4);
        let dump = flight.dump_jsonl();
        assert_eq!(dump.lines().count(), 1);
        assert!(parse_journal(&dump).expect("parses").is_empty());
    }

    #[test]
    fn crash_path_names_the_pid() {
        let path = FlightRecorder::crash_path(Path::new("/tmp/x"));
        let name = path.file_name().unwrap().to_string_lossy().to_string();
        assert!(name.starts_with("CRASH-"));
        assert!(name.ends_with(".jsonl"));
        assert!(name
            .trim_start_matches("CRASH-")
            .trim_end_matches(".jsonl")
            .parse::<u32>()
            .is_ok());
    }

    #[test]
    fn capacity_is_at_least_one() {
        let flight = FlightRecorder::new(0);
        assert_eq!(flight.capacity(), 1);
        assert!(flight.is_empty());
    }
}
