//! Property tests for the run differ.
//!
//! Two invariants `obs::diff` promises:
//!
//! 1. **Identity**: diffing any journal against itself is all-NEUTRAL
//!    with every delta exactly zero — the gate can never fire on a
//!    no-op change.
//! 2. **Antisymmetry**: swapping base and head negates every signed
//!    delta and swaps IMPROVED with REGRESSED, so "A regressed vs B"
//!    and "B improved vs A" are the same statement.

use proptest::prelude::*;
use swdual_obs::diff::{diff_obs, DiffClass, DiffOptions};
use swdual_obs::{Obs, Track};

/// Build a synthetic run from generated job tuples:
/// `(worker, wall_start, wall_dur, virt_dur, cells)` plus λ and an
/// optional fault count.
fn build_obs(jobs: &[(usize, f64, f64, f64, f64)], lambda: f64, faults: usize) -> Obs {
    let obs = Obs::enabled();
    for w in jobs
        .iter()
        .map(|j| j.0)
        .collect::<std::collections::BTreeSet<_>>()
    {
        obs.instant(
            Track::Master,
            "worker_registered",
            &[("worker", w as f64), ("is_gpu", (w % 2) as f64)],
        );
    }
    obs.instant(
        Track::Scheduler,
        "binsearch_done",
        &[
            ("iterations", 7.0),
            ("lower_bound", lambda / 2.0),
            ("lambda", lambda),
        ],
    );
    let mut virt_clock: std::collections::BTreeMap<usize, f64> = Default::default();
    for (task, (w, wall_start, wall_dur, virt_dur, cells)) in jobs.iter().enumerate() {
        let vs = virt_clock.entry(*w).or_insert(0.0);
        obs.virtual_span(
            Track::Planned(*w),
            &format!("task-{task}"),
            *vs,
            *virt_dur,
            &[("task", task as f64)],
        );
        obs.span(
            Track::Worker(*w),
            &format!("task-{task}"),
            *wall_start,
            *wall_dur,
            Some((*vs, *virt_dur)),
            &[("task", task as f64), ("cells", *cells)],
        );
        *vs += virt_dur;
    }
    for i in 0..faults {
        obs.instant(Track::Faults, "task_redispatch", &[("task", i as f64)]);
    }
    obs
}

fn job_strategy() -> impl Strategy<Value = Vec<(usize, f64, f64, f64, f64)>> {
    prop::collection::vec(
        (
            0usize..4,
            0.0..5.0f64,
            1e-4..2.0f64,
            1e-3..20.0f64,
            1e3..1e8f64,
        ),
        1..24,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn self_diff_is_all_neutral_with_zero_deltas(
        jobs in job_strategy(),
        lambda in 0.1..50.0f64,
        faults in 0usize..4,
    ) {
        let obs = build_obs(&jobs, lambda, faults);
        let report = diff_obs(&obs, &obs, &DiffOptions::default());
        prop_assert!(report.comparable);
        prop_assert_eq!(report.improved, 0);
        prop_assert_eq!(report.regressed, 0);
        prop_assert!(!report.metrics.is_empty());
        for m in &report.metrics {
            prop_assert_eq!(m.class, DiffClass::Neutral, "{} not neutral", m.name);
            prop_assert_eq!(m.delta, 0.0, "{} delta {}", m.name, m.delta);
            prop_assert_eq!(m.relative, 0.0, "{} relative {}", m.name, m.relative);
        }
        prop_assert!(!report.has_regressions(false));
        prop_assert!(report.regressions(true).is_empty());
    }

    #[test]
    fn swapping_base_and_head_negates_every_delta(
        jobs_a in job_strategy(),
        jobs_b in job_strategy(),
        lambda_a in 0.1..50.0f64,
        lambda_b in 0.1..50.0f64,
        faults_a in 0usize..4,
        faults_b in 0usize..4,
    ) {
        let a = build_obs(&jobs_a, lambda_a, faults_a);
        let b = build_obs(&jobs_b, lambda_b, faults_b);
        let opts = DiffOptions::default();
        let forward = diff_obs(&a, &b, &opts);
        let backward = diff_obs(&b, &a, &opts);
        prop_assert_eq!(forward.metrics.len(), backward.metrics.len());
        for (f, r) in forward.metrics.iter().zip(&backward.metrics) {
            prop_assert_eq!(&f.name, &r.name);
            prop_assert_eq!(f.base, r.head, "{}", f.name);
            prop_assert_eq!(f.head, r.base, "{}", f.name);
            // Deltas negate exactly: both are the same two floats
            // subtracted in opposite orders.
            prop_assert_eq!(f.delta, -r.delta, "{}", f.name);
            let swapped = match f.class {
                DiffClass::Improved => DiffClass::Regressed,
                DiffClass::Regressed => DiffClass::Improved,
                DiffClass::Neutral => DiffClass::Neutral,
            };
            prop_assert_eq!(r.class, swapped, "{}", f.name);
        }
        prop_assert_eq!(forward.improved, backward.regressed);
        prop_assert_eq!(forward.regressed, backward.improved);
    }

    #[test]
    fn scaling_the_modelled_clock_up_always_regresses_makespan(
        jobs in job_strategy(),
        lambda in 0.1..50.0f64,
        factor in 1.5..8.0f64,
    ) {
        let base = build_obs(&jobs, lambda, 0);
        let slowed: Vec<_> = jobs
            .iter()
            .map(|(w, ws, wd, vd, c)| (*w, *ws, *wd, vd * factor, *c))
            .collect();
        let head = build_obs(&slowed, lambda, 0);
        let report = diff_obs(&base, &head, &DiffOptions::default());
        let makespan = report
            .metrics
            .iter()
            .find(|m| m.name == "makespan.modelled")
            .unwrap();
        prop_assert_eq!(makespan.class, DiffClass::Regressed);
        prop_assert!(report.has_regressions(true));
    }
}
