//! Property tests for the live bus and the flight ring.
//!
//! The contract under test: what a subscriber observes is a
//! prefix-preserving subsequence of the journal (events arrive in
//! journal order, a saturated queue loses individual events but never
//! reorders), and the events it does *not* observe are exactly the
//! drop counter — `received + dropped == published`, always.

use proptest::prelude::*;
use swdual_obs::{FlightRecorder, Obs, Track};

proptest! {
    #[test]
    fn subscriber_stream_is_a_journal_subsequence_with_exact_drops(
        capacity in 1usize..8,
        // op 0 = drain, anything else = publish an event.
        ops in prop::collection::vec(0u8..6, 1..200),
    ) {
        let obs = Obs::enabled();
        // Pre-subscribe traffic must never be delivered.
        obs.instant(Track::Master, "pre", &[]);
        let sub = obs.subscribe_with_capacity(capacity);

        let mut received: Vec<String> = Vec::new();
        let mut published: Vec<String> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            if *op == 0 {
                received.extend(sub.drain().into_iter().map(|e| e.name));
            } else {
                let name = format!("e{i}");
                obs.instant(Track::Master, &name, &[]);
                published.push(name);
            }
        }
        received.extend(sub.drain().into_iter().map(|e| e.name));

        // Exact accounting: nothing is lost silently.
        prop_assert_eq!(
            received.len() as u64 + sub.dropped(),
            published.len() as u64
        );
        prop_assert_eq!(sub.dropped(), obs.bus_dropped_events());

        // No pre-subscribe leakage.
        prop_assert!(received.iter().all(|n| n != "pre"));

        // Subsequence of the published order: every received event
        // matches a strictly later publication than the previous one.
        let mut idx = 0usize;
        for name in &received {
            match published[idx..].iter().position(|p| p == name) {
                Some(pos) => idx += pos + 1,
                None => prop_assert!(false, "{name} not a later publication"),
            }
        }

        // Prefix preservation: with no drops the streams are equal —
        // and in general the received stream starts with the published
        // prefix up to the first drop (the queue drops the newest
        // event, never an already-queued one).
        if sub.dropped() == 0 {
            prop_assert_eq!(&received, &published);
        } else {
            let intact = received
                .iter()
                .zip(published.iter())
                .take_while(|(r, p)| r == p)
                .count();
            // Everything before the first divergence was delivered
            // contiguously; at least the first min(capacity, published)
            // events can never have been dropped.
            prop_assert!(intact >= capacity.min(published.len()));
        }
    }

    #[test]
    fn flight_ring_retains_exactly_the_newest_events(
        capacity in 1usize..16,
        count in 0usize..64,
    ) {
        let obs = Obs::enabled();
        let flight = FlightRecorder::new(capacity);
        obs.attach_flight(&flight);
        for i in 0..count {
            obs.instant(Track::Worker(i % 3), &format!("e{i}"), &[]);
        }
        let held: Vec<String> = flight.events().into_iter().map(|e| e.name).collect();
        let expect: Vec<String> = (count.saturating_sub(capacity)..count)
            .map(|i| format!("e{i}"))
            .collect();
        prop_assert_eq!(held, expect);
        prop_assert_eq!(flight.seen(), count as u64);
        // Rings overwrite, they never count as bus drops.
        prop_assert_eq!(obs.bus_dropped_events(), 0);
        // And the dump parses as a journal fragment of exactly len().
        let parsed = swdual_obs::journal::parse_journal(&flight.dump_jsonl()).unwrap();
        prop_assert_eq!(parsed.len(), flight.len());
    }
}
