//! Property tests for the live-metrics histogram and the run auditor.
//!
//! Two invariants the observability layer promises:
//!
//! 1. Log-bucketed histogram quantiles never under-report and are
//!    within one bucket's relative error (a factor of γ = 2^(1/4)) of
//!    the exact order statistic.
//! 2. The auditor's makespans equal the span-derived makespans computed
//!    straight from the recorder's events — analysis is a pure fold,
//!    not an estimate.

use proptest::prelude::*;
use swdual_obs::analysis::analyze_obs;
use swdual_obs::metrics::{Metrics, HISTOGRAM_GAMMA};
use swdual_obs::{Obs, Track};

/// Exact order statistic with the same rank convention the histogram
/// uses: rank = ceil(q * n), 1-based.
fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn histogram_quantiles_are_within_one_bucket(
        values in prop::collection::vec(1e-8..1e4f64, 1..200),
        q in 0.01..1.0f64,
    ) {
        let metrics = Metrics::enabled();
        for (i, v) in values.iter().enumerate() {
            // Spread over shards: merging must not change the answer.
            metrics.for_shard(i).observe("lat", &[], *v);
        }
        let snap = metrics.snapshot();
        let hist = snap.histogram_summed("lat").unwrap();
        prop_assert_eq!(hist.count, values.len() as u64);

        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        for q in [q, 0.50, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = hist.quantile(q).unwrap();
            // Bucket uppers over-estimate, never under-estimate, and by
            // at most one bucket's width (γ relative).
            prop_assert!(
                est >= exact * (1.0 - 1e-12),
                "q={} est={} < exact={}", q, est, exact
            );
            prop_assert!(
                est <= exact * HISTOGRAM_GAMMA * (1.0 + 1e-12),
                "q={} est={} > γ·exact={}", q, est, exact * HISTOGRAM_GAMMA
            );
        }
        // The top quantile is exact: it clamps to the recorded max.
        prop_assert_eq!(hist.quantile(1.0).unwrap(), *sorted.last().unwrap());
    }

    #[test]
    fn auditor_makespan_matches_recorder_spans(
        jobs in prop::collection::vec(
            (0.0..10.0f64, 0.001..5.0f64, 0.0..10.0f64, 0.001..5.0f64, 0..4usize),
            1..24,
        ),
    ) {
        let obs = Obs::enabled();
        for (i, (wall_start, wall_dur, virt_start, virt_dur, w)) in jobs.iter().enumerate() {
            obs.span(
                Track::Worker(*w),
                &format!("task-{i}"),
                *wall_start,
                *wall_dur,
                Some((*virt_start, *virt_dur)),
                &[("task", i as f64)],
            );
        }
        let report = analyze_obs(&obs);

        // Same fold, straight from the events: the auditor must agree
        // bit-for-bit with the recorder's spans.
        let mut wall_lo = f64::INFINITY;
        let mut wall_hi = f64::NEG_INFINITY;
        let mut modelled = 0.0f64;
        for e in obs.events() {
            wall_lo = wall_lo.min(e.wall_start);
            wall_hi = wall_hi.max(e.wall_start + e.wall_dur);
            if let (Some(s), Some(d)) = (e.virt_start, e.virt_dur) {
                modelled = modelled.max(s + d);
            }
        }
        prop_assert_eq!(report.wall_makespan, wall_hi - wall_lo);
        prop_assert_eq!(report.modelled_makespan, modelled);
        prop_assert_eq!(report.tasks, jobs.len());

        // Worker busy time is additive over that worker's spans.
        for audit in &report.workers {
            let busy: f64 = jobs
                .iter()
                .filter(|(.., w)| *w == audit.worker)
                .map(|(_, wall_dur, ..)| *wall_dur)
                .sum();
            prop_assert!(
                (audit.busy_wall - busy).abs() < 1e-9,
                "worker {} busy {} != {}", audit.worker, audit.busy_wall, busy
            );
        }
    }
}
