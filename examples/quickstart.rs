//! Quickstart: pairwise alignment in a few lines.
//!
//! Reproduces the paper's Figure 1 (global DNA alignment with
//! ma = +1, mi = −1, g = −2) and then runs a protein local alignment
//! under BLOSUM62 with the affine-gap model of Eqs. 2–4.
//!
//! Run with: `cargo run --release --example quickstart`

use swdual_repro::align::traceback;
use swdual_repro::bio::{Alphabet, ScoringScheme};

fn main() {
    // --- Figure 1: global alignment of two DNA sequences ---
    let scheme = ScoringScheme::figure1_dna();
    let q = Alphabet::Dna.encode(b"ACTTGTCCG").expect("valid DNA");
    let s = Alphabet::Dna.encode(b"ATTGTCAG").expect("valid DNA");
    let aln = traceback::global(&q, &s, &scheme);
    println!("Figure 1 — global DNA alignment (ma=+1, mi=-1, g=-2)");
    println!("{}", aln.render(&q, &s, Alphabet::Dna));
    println!("score = {}  (the paper's Figure 1 reports 4)", aln.score);
    println!("cigar = {}\n", aln.cigar());
    assert_eq!(aln.score, 4);

    // --- Protein local alignment under BLOSUM62 ---
    let scheme = ScoringScheme::protein_default();
    let q = Alphabet::Protein
        .encode(b"MKWVTFISLLFLFSSAYSRGVFRRDAHKSEVAHRFKDLGEENFKALVLIA")
        .expect("valid protein");
    let s = Alphabet::Protein
        .encode(b"MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFNDLGEKHFKGLVLIA")
        .expect("valid protein");
    let aln = traceback::local(&q, &s, &scheme);
    println!("Local protein alignment (BLOSUM62, gap open 10, extend 2)");
    println!("{}", aln.render(&q, &s, Alphabet::Protein));
    println!(
        "score = {}, identity = {:.1}%, region q[{}..{}] vs s[{}..{}]",
        aln.score,
        aln.identity() * 100.0,
        aln.query_start,
        aln.query_end,
        aln.subject_start,
        aln.subject_end
    );
}
