//! The paper's binary database format (SQB) in action.
//!
//! §IV: FASTA files cannot be read at arbitrary positions, so SWDUAL
//! introduces a binary format with an index. This example writes a
//! synthetic database as FASTA, converts it to SQB, and demonstrates
//! random access: reading one record without touching the rest, with
//! sizes known before allocation.
//!
//! Run with: `cargo run --release --example format_convert`

use swdual_repro::bio::{fasta, sqb, Alphabet};
use swdual_repro::datagen::{synthetic_database, LengthModel};

fn main() {
    let dir = std::env::temp_dir().join("swdual_format_demo");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let fasta_path = dir.join("db.fasta");
    let sqb_path = dir.join("db.sqb");

    // Generate and write as FASTA.
    let database = synthetic_database("demo", 1000, LengthModel::protein_database(360.0), 42);
    fasta::write_file(&database, &fasta_path).expect("write FASTA");
    let fasta_bytes = std::fs::metadata(&fasta_path).unwrap().len();

    // Convert to SQB ("Convert format" in the paper's Figure 6).
    sqb::write_file(&database, &sqb_path).expect("write SQB");
    let sqb_bytes = std::fs::metadata(&sqb_path).unwrap().len();

    println!(
        "wrote {} sequences: FASTA {} bytes, SQB {} bytes",
        database.len(),
        fasta_bytes,
        sqb_bytes
    );

    // Random access: jump straight to record 742.
    let mut file = sqb::SqbFile::open(&sqb_path).expect("open SQB");
    println!(
        "SQB header: {} sequences, {} residues, alphabet {:?}",
        file.header().n_sequences,
        file.header().total_residues,
        file.header().alphabet
    );
    // "The memory allocation process is simplified due to the fact that
    // all the sequences sizes are known beforehand":
    let len_before_read = file.residue_len(742).expect("record 742 exists");
    let record = file.read_sequence(742).expect("read record 742");
    println!(
        "record 742: id {:?}, {} residues (index said {} before reading)",
        record.id,
        record.len(),
        len_before_read
    );
    assert_eq!(record.len() as u32, len_before_read);
    println!(
        "first 60 residues: {}",
        &record.text()[..record.len().min(60)]
    );

    // Round-trip sanity: FASTA -> parse -> equals original.
    let back = fasta::read_file(&fasta_path, Alphabet::Protein, fasta::ResiduePolicy::Strict)
        .expect("re-read FASTA");
    assert_eq!(back, database);
    println!("FASTA round-trip verified ({} records)", back.len());

    std::fs::remove_file(&fasta_path).ok();
    std::fs::remove_file(&sqb_path).ok();
}
