//! Paper-scale scaling study (Figures 7 and 8 in miniature).
//!
//! Runs the calibrated virtual-time platform model over the paper's
//! workloads: the four baselines at 1–4 workers and SWDUAL at 2–8
//! workers on UniProt (Figure 7), then SWDUAL across all five databases
//! (Figure 8). Prints gnuplot-ready series.
//!
//! Run with: `cargo run --release --example paper_scaling`

use swdual_repro::platform::calib::EngineModel;
use swdual_repro::platform::experiment::{run_single_kind, run_swdual};
use swdual_repro::platform::workload::{DatabaseSpec, Workload};
use swdual_repro::sched::schedule::PeKind;

fn main() {
    let uniprot = Workload::paper_queries(DatabaseSpec::uniprot());

    println!("# Figure 7 — execution time (s) vs workers, UniProt");
    println!("# (compare: paper Fig. 7, log-scale y)");
    for (name, model, kind) in [
        ("SWPS3", EngineModel::swps3(), PeKind::Cpu),
        ("STRIPED", EngineModel::striped(), PeKind::Cpu),
        ("SWIPE", EngineModel::swipe(), PeKind::Cpu),
        ("CUDASW++", EngineModel::cudasw(), PeKind::Gpu),
    ] {
        print!("{name:<10}");
        for workers in 1..=4 {
            let r = run_single_kind(&uniprot, &model, workers, kind);
            print!(" {:>10.1}", r.seconds);
        }
        println!();
    }
    print!("{:<10}", "SWDUAL");
    print!(" {:>10}", "-");
    for workers in 2..=8 {
        let r = run_swdual(&uniprot, workers, 4);
        print!(" {:>10.1}", r.seconds);
    }
    println!("\n");

    println!("# Figure 8 — SWDUAL execution time (s) vs workers, five databases");
    println!("# workers: 2..8");
    for db in DatabaseSpec::all_paper_databases() {
        let name = db.name.clone();
        let workload = Workload::paper_queries(db);
        print!("{name:<14}");
        for workers in 2..=8 {
            let r = run_swdual(&workload, workers, 4);
            print!(" {:>8.1}", r.seconds);
        }
        println!();
    }

    println!("\n# Figure 9 — homogeneous vs heterogeneous query sets (s)");
    for (name, workload) in [
        (
            "Heterogeneous",
            Workload::heterogeneous_queries(DatabaseSpec::uniprot()),
        ),
        (
            "Homogeneous",
            Workload::homogeneous_queries(DatabaseSpec::uniprot()),
        ),
    ] {
        print!("{name:<14}");
        for workers in 2..=8 {
            let r = run_swdual(&workload, workers, 4);
            print!(" {:>9.1}", r.seconds);
        }
        println!();
    }
}
