//! Scheduler playground: watch the dual approximation work.
//!
//! Builds the paper's UniProt workload (40 tasks with length-dependent
//! CPU/GPU times), runs every allocation policy on the 4-CPU + 4-GPU
//! configuration, and prints makespans, idle time and Gantt charts —
//! the paper's §III machinery made visible.
//!
//! Run with: `cargo run --release --example scheduler_playground`

use swdual_repro::platform::calib::EngineModel;
use swdual_repro::platform::experiment::HybridPolicy;
use swdual_repro::platform::workload::{DatabaseSpec, Workload};
use swdual_repro::sched::binsearch::{dual_approx_schedule, BinarySearchConfig};
use swdual_repro::sched::metrics::evaluate;
use swdual_repro::sched::PlatformSpec;

fn main() {
    let workload = Workload::paper_queries(DatabaseSpec::uniprot());
    let tasks = workload.build_tasks(
        &EngineModel::swdual_cpu_worker(),
        &EngineModel::swdual_gpu_worker(),
    );
    let platform = PlatformSpec::new(4, 4);

    println!(
        "instance: {} tasks, total CPU area {:.0} s, total GPU area {:.0} s",
        tasks.len(),
        tasks.total_cpu_area(),
        tasks.total_gpu_area()
    );
    println!(
        "acceleration ratios: min {:.2}, max {:.2}\n",
        tasks
            .iter()
            .map(|t| t.acceleration())
            .fold(f64::INFINITY, f64::min),
        tasks.iter().map(|t| t.acceleration()).fold(0.0, f64::max)
    );

    println!(
        "{:<18} {:>10} {:>10} {:>8} {:>9}",
        "policy", "makespan", "idle", "util", "ratio/LB"
    );
    for policy in HybridPolicy::ALL {
        let schedule = policy.schedule(&tasks, &platform);
        let m = evaluate(&schedule, &tasks, &platform);
        println!(
            "{:<18} {:>10.2} {:>10.2} {:>7.1}% {:>9.3}",
            policy.name(),
            m.makespan,
            m.total_idle,
            m.utilisation * 100.0,
            m.ratio_to_lb
        );
    }

    // Show the binary search converging.
    println!("\n--- binary search over λ (greedy dual step) ---");
    let out = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
    println!(
        "iterations: {}, final bounds [{:.2}, {:.2}], makespan {:.2} (≤ 2λ guarantee)",
        out.iterations,
        out.lower_bound,
        out.upper_bound,
        out.schedule.makespan()
    );
    println!(
        "approximation ratio vs proven lower bound: {:.3}",
        out.approximation_ratio()
    );

    println!("\n--- SWDUAL schedule (Gantt, 4 GPUs on top) ---");
    print!("{}", out.schedule.gantt(&platform, 76));
}
