//! Render the SWDUAL schedule of the paper workload as an SVG Gantt
//! chart (written to swdual_gantt.svg in the current directory).
//!
//! Run with: `cargo run --release --example gantt_svg_demo`

use swdual_repro::platform::calib::EngineModel;
use swdual_repro::platform::workload::{DatabaseSpec, Workload};
use swdual_repro::sched::binsearch::{dual_approx_schedule, BinarySearchConfig};
use swdual_repro::sched::gantt_svg::render_svg_default;
use swdual_repro::sched::PlatformSpec;

fn main() {
    let workload = Workload::paper_queries(DatabaseSpec::uniprot());
    let tasks = workload.build_tasks(
        &EngineModel::swdual_cpu_worker(),
        &EngineModel::swdual_gpu_worker(),
    );
    let platform = PlatformSpec::new(4, 4);
    let out = dual_approx_schedule(&tasks, &platform, BinarySearchConfig::default());
    let svg = render_svg_default(&out.schedule, &platform);
    std::fs::write("swdual_gantt.svg", &svg).expect("write SVG");
    println!(
        "wrote swdual_gantt.svg ({} bytes, C_max = {:.2} s, {} tasks)",
        svg.len(),
        out.schedule.makespan(),
        out.schedule.placements.len()
    );
}
