//! Translated search: nucleotide contigs against a protein database.
//!
//! Sequencing projects produce DNA; protein databases store proteins.
//! Tools in the SWIPE/BLAST family bridge the gap by translating the
//! DNA in all six reading frames and searching the translations. This
//! example builds a DNA contig that *contains* a known protein's coding
//! sequence (plus flanking junk on the reverse strand), six-frame
//! translates it with `swdual-bio`, and searches a synthetic protein
//! database in which that protein was planted — the right frame wins.
//!
//! Run with: `cargo run --release --example translated_search`

use swdual_repro::align::engine::EngineKind;
use swdual_repro::align::par_search::par_score_many;
use swdual_repro::bio::translate::{reverse_complement, six_frame};
use swdual_repro::bio::{Alphabet, ScoringScheme, Sequence};
use swdual_repro::datagen::{synthetic_database, LengthModel};

/// Reverse-translate a protein into one valid codon sequence (always
/// picking a canonical codon per amino acid).
fn codon_for(aa: u8) -> &'static [u8; 3] {
    match aa {
        b'A' => b"GCT",
        b'R' => b"CGT",
        b'N' => b"AAT",
        b'D' => b"GAT",
        b'C' => b"TGT",
        b'Q' => b"CAA",
        b'E' => b"GAA",
        b'G' => b"GGT",
        b'H' => b"CAT",
        b'I' => b"ATT",
        b'L' => b"CTT",
        b'K' => b"AAA",
        b'M' => b"ATG",
        b'F' => b"TTT",
        b'P' => b"CCT",
        b'S' => b"TCT",
        b'T' => b"ACT",
        b'W' => b"TGG",
        b'Y' => b"TAT",
        b'V' => b"GTT",
        other => panic!("no codon for {:?}", other as char),
    }
}

fn main() {
    // A protein database with 150 synthetic entries.
    let database = synthetic_database("prot", 150, LengthModel::Fixed(120), 77);
    let target_index = 42;
    let target = database.get(target_index).unwrap().clone();

    // Encode the target protein as DNA and embed it, reverse-
    // complemented, inside a longer contig (so the hit is on frame 3-5).
    let mut coding: Vec<u8> = Vec::new();
    for &code in target.codes() {
        let aa = Alphabet::Protein.decode_byte(code);
        coding.extend_from_slice(codon_for(aa));
    }
    let coding = Alphabet::Dna.encode(&coding).expect("valid codons");
    let rc = reverse_complement(&coding);
    let mut contig: Vec<u8> = Alphabet::Dna.encode(b"ACGTACGTAGGTTAACC").unwrap();
    contig.extend_from_slice(&rc);
    contig.extend(Alphabet::Dna.encode(b"TTGACCAGTT").unwrap());
    let contig = Sequence::from_codes("contig1", Alphabet::Dna, contig);
    println!(
        "contig {} nt; target protein {} ({} aa) hidden on the reverse strand",
        contig.len(),
        target.id,
        target.len()
    );

    // Six-frame translate and search each frame.
    let scheme = ScoringScheme::protein_default();
    let refs: Vec<&[u8]> = database.iter().map(|s| s.codes()).collect();
    let frames = six_frame(&contig).expect("nucleotide input");
    let mut best: (i32, String, usize) = (i32::MIN, String::new(), 0);
    for frame in &frames {
        let scores = par_score_many(frame.codes(), &refs, &scheme, EngineKind::Striped);
        let (arg, &max) = scores.iter().enumerate().max_by_key(|&(_, s)| *s).unwrap();
        println!(
            "{:<16} best hit {} score {}",
            frame.id,
            database.get(arg).unwrap().id,
            max
        );
        if max > best.0 {
            best = (max, frame.id.clone(), arg);
        }
    }

    println!(
        "\nwinner: {} -> {} (score {})",
        best.1,
        database.get(best.2).unwrap().id,
        best.0
    );
    assert_eq!(best.2, target_index, "the planted protein must win");
    assert!(
        best.1.ends_with("frame3") || best.1.ends_with("frame4") || best.1.ends_with("frame5"),
        "the hit must come from the reverse strand"
    );
    println!("translated search recovered the planted coding sequence ✓");
}
