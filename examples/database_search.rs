//! Hybrid database search: the SWDUAL pipeline end to end.
//!
//! Generates a synthetic protein database (a scaled-down UniProt),
//! derives homologous queries from it, and runs the master-slave
//! runtime with CPU workers (SWIPE-style inter-sequence kernel) and
//! simulated Tesla C2050 GPU workers, allocated by the
//! dual-approximation scheduler. Prints the ranked hits, the per-worker
//! accounting and the Gantt chart of the static schedule.
//!
//! Run with: `cargo run --release --example database_search`

use swdual_repro::core::prelude::*;
use swdual_repro::datagen::{queries_from_database, scaled_database, MutationProfile};
use swdual_repro::sched::PlatformSpec as Spec;

fn main() {
    // A 0.2% slice of the synthetic UniProt: ~1075 sequences.
    let database = scaled_database("uniprot", 537_505, 362.0, 0.002, 2014);
    let queries = queries_from_database(&database, 4, 100, 5000, &MutationProfile::homolog(), 2015);
    println!(
        "database: {} sequences, {} residues; {} queries",
        database.len(),
        database.total_residues(),
        queries.len()
    );

    let report = SearchBuilder::new()
        .database(database)
        .queries(queries)
        .hybrid_workers(2, 2) // 2 CPU + 2 simulated GPU workers
        .top_k(5)
        .run();

    println!("\n--- top hits ---");
    print!("{}", report.render_hits(3));

    println!("--- workers ---");
    print!("{}", report.render_workers());

    if let Some(schedule) = report.schedule() {
        println!("--- dual-approximation schedule (Gantt) ---");
        print!("{}", schedule.gantt(&Spec::new(2, 2), 72));
    }

    println!(
        "\nwall clock: {:.2} s ({:.3} GCUPS real on this host)",
        report.wall_seconds(),
        report.wall_gcups()
    );
    println!(
        "modelled (paper-machine) makespan: {:.2} s ({:.2} GCUPS)",
        report.modelled_makespan(),
        report.modelled_gcups()
    );
}
